//! Portion-based adaptive allocation (§III-E, Eq. 9–10).
//!
//! At each timestamp the curator decides which *portion* `p_t` of the
//! available resource to spend — of the remaining window budget `ε_rm`
//! (budget division) or of the active user set (population division):
//!
//! ```text
//! Dev_t = Σ_s |f^{t−1}_s − mean_{κ previous}(f_s)|                  (Eq. 9)
//! p_t   = min{ (α/w)(1 − mean_κ |S*_i|/|S|) · ln(Dev_t + 1), p_max } (Eq. 10)
//! ```
//!
//! `Dev` uses the curator-side estimated frequencies (the only data legally
//! visible) with per-dimension absolute deviations, and grows `p` when the
//! stream becomes less uniform; the significant-transition ratio term
//! shrinks `p` when many dimensions are changing, preventing premature
//! budget exhaustion.
//!
//! The non-adaptive comparison strategies of §III-E are included: *Uniform*
//! (`p = 1/w`), *Sample* (everything at the first timestamp of each window)
//! and the *one-random-report-per-window* alternative (handled by the
//! engine's per-user scheduling; see `RetraSyn`).

use crate::wal::{Dec, Enc};
use std::collections::VecDeque;

/// The allocation strategies evaluated in the paper (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationKind {
    /// Data-dependent portions via Eq. 9–10 (the paper's main strategy).
    Adaptive,
    /// `p = 1/w` at every timestamp.
    Uniform,
    /// `p = 1` at the first timestamp of each window, `0` elsewhere.
    Sample,
    /// Each user reports at one uniformly random timestamp per window
    /// (population division only; mentioned in §III-E as the alternative
    /// with "less user wastage").
    RandomReport,
}

/// Stateful portion calculator.
#[derive(Debug, Clone)]
pub struct Allocator {
    kind: AllocationKind,
    w: usize,
    alpha: f64,
    kappa: usize,
    p_max: f64,
    /// Model frequency snapshots after each step (most recent last); at
    /// most κ+1 retained.
    freq_history: VecDeque<Vec<f64>>,
    /// Ratios |S*_i| / |S| for recent steps; at most κ retained.
    sig_history: VecDeque<f64>,
}

impl Allocator {
    /// Create an allocator.
    pub fn new(kind: AllocationKind, w: usize, alpha: f64, kappa: usize, p_max: f64) -> Self {
        assert!(w >= 1);
        assert!(kappa >= 1);
        assert!(p_max > 0.0 && p_max <= 1.0);
        Allocator {
            kind,
            w,
            alpha,
            kappa,
            p_max,
            freq_history: VecDeque::new(),
            sig_history: VecDeque::new(),
        }
    }

    /// The configured strategy.
    pub fn kind(&self) -> AllocationKind {
        self.kind
    }

    /// The deviation `Dev_t` of Eq. 9 from the recorded history (0 when
    /// fewer than two snapshots exist).
    pub fn deviation(&self) -> f64 {
        if self.freq_history.len() < 2 {
            return 0.0;
        }
        let last = self.freq_history.back().unwrap();
        let prev_count = self.freq_history.len() - 1;
        let dims = last.len();
        let mut dev = 0.0;
        for s in 0..dims {
            let mean: f64 = self.freq_history.iter().take(prev_count).map(|f| f[s]).sum::<f64>()
                / prev_count as f64;
            dev += (last[s] - mean).abs();
        }
        dev
    }

    /// The portion `p_t` for timestamp `t`.
    pub fn portion(&self, t: u64) -> f64 {
        match self.kind {
            AllocationKind::Uniform => 1.0 / self.w as f64,
            AllocationKind::Sample => {
                if t.is_multiple_of(self.w as u64) {
                    1.0
                } else {
                    0.0
                }
            }
            AllocationKind::RandomReport => 1.0 / self.w as f64, // engine-scheduled
            AllocationKind::Adaptive => {
                if t == 0 || self.freq_history.len() < 2 {
                    // Algorithm 1 line 2: bootstrap with 1/w.
                    return 1.0 / self.w as f64;
                }
                let sig_mean = if self.sig_history.is_empty() {
                    0.0
                } else {
                    self.sig_history.iter().sum::<f64>() / self.sig_history.len() as f64
                };
                let dev = self.deviation();
                let p = (self.alpha / self.w as f64) * (1.0 - sig_mean) * (dev + 1.0).ln();
                p.clamp(0.0, self.p_max)
            }
        }
    }

    /// Record the post-update model snapshot and this step's significant
    /// ratio `|S*_t| / |S|`.
    pub fn observe(&mut self, freqs: &[f64], sig_ratio: f64) {
        self.freq_history.push_back(freqs.to_vec());
        while self.freq_history.len() > self.kappa + 1 {
            self.freq_history.pop_front();
        }
        self.sig_history.push_back(sig_ratio.clamp(0.0, 1.0));
        while self.sig_history.len() > self.kappa {
            self.sig_history.pop_front();
        }
    }

    /// Drop all recorded history in place (configuration is untouched).
    pub fn reset(&mut self) {
        self.freq_history.clear();
        self.sig_history.clear();
    }

    /// Serialize the recorded histories for a checkpoint (configuration is
    /// not serialized — it is pinned by the session fingerprint).
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        enc.usize(self.freq_history.len());
        for snap in &self.freq_history {
            enc.usize(snap.len());
            for &f in snap {
                enc.f64(f);
            }
        }
        enc.usize(self.sig_history.len());
        for &s in &self.sig_history {
            enc.f64(s);
        }
    }

    /// Restore the histories from [`Self::encode_into`] output.
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.reset();
        let snaps = dec.usize()?;
        if snaps > self.kappa + 1 {
            return Err(format!("allocator history of {snaps} exceeds kappa + 1"));
        }
        for _ in 0..snaps {
            let dims = dec.usize()?;
            let mut snap = Vec::with_capacity(dims);
            for _ in 0..dims {
                snap.push(dec.f64()?);
            }
            self.freq_history.push_back(snap);
        }
        let sigs = dec.usize()?;
        if sigs > self.kappa {
            return Err(format!("allocator ratio history of {sigs} exceeds kappa"));
        }
        for _ in 0..sigs {
            self.sig_history.push_back(dec.f64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(w: usize) -> Allocator {
        Allocator::new(AllocationKind::Adaptive, w, 8.0, 5, 0.6)
    }

    #[test]
    fn uniform_is_one_over_w() {
        let a = Allocator::new(AllocationKind::Uniform, 20, 8.0, 5, 0.6);
        for t in 0..50 {
            assert!((a.portion(t) - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_fires_at_window_starts() {
        let a = Allocator::new(AllocationKind::Sample, 10, 8.0, 5, 0.6);
        assert_eq!(a.portion(0), 1.0);
        assert_eq!(a.portion(1), 0.0);
        assert_eq!(a.portion(9), 0.0);
        assert_eq!(a.portion(10), 1.0);
        assert_eq!(a.portion(25), 0.0);
        assert_eq!(a.portion(30), 1.0);
    }

    #[test]
    fn adaptive_bootstraps_with_uniform() {
        let a = adaptive(20);
        assert!((a.portion(0) - 0.05).abs() < 1e-12);
        assert!((a.portion(5) - 0.05).abs() < 1e-12); // no history yet
    }

    #[test]
    fn adaptive_static_stream_spends_nothing() {
        // Identical snapshots -> Dev = 0 -> ln(1) = 0 -> p = 0.
        let mut a = adaptive(10);
        let snap = vec![0.3, 0.2, 0.5];
        a.observe(&snap, 0.0);
        a.observe(&snap, 0.0);
        a.observe(&snap, 0.0);
        assert_eq!(a.deviation(), 0.0);
        assert_eq!(a.portion(3), 0.0);
    }

    #[test]
    fn adaptive_portion_grows_with_deviation() {
        let mut small = adaptive(10);
        small.observe(&[0.5, 0.5], 0.0);
        small.observe(&[0.52, 0.48], 0.0);
        let mut large = adaptive(10);
        large.observe(&[0.5, 0.5], 0.0);
        large.observe(&[0.9, 0.1], 0.0);
        assert!(large.deviation() > small.deviation());
        assert!(large.portion(2) > small.portion(2));
    }

    #[test]
    fn adaptive_capped_at_p_max() {
        let mut a = adaptive(2); // alpha/w = 4: easily saturates
        a.observe(&[0.0, 0.0, 0.0], 0.0);
        a.observe(&[1.0, 1.0, 1.0], 0.0);
        assert_eq!(a.portion(2), 0.6);
    }

    #[test]
    fn significant_ratio_shrinks_portion() {
        let mut calm = adaptive(10);
        calm.observe(&[0.5, 0.5], 0.0);
        calm.observe(&[0.7, 0.3], 0.0);
        let mut busy = adaptive(10);
        busy.observe(&[0.5, 0.5], 0.9);
        busy.observe(&[0.7, 0.3], 0.9);
        assert!(busy.portion(2) < calm.portion(2));
        // With every transition significant, p collapses toward 0.
        let mut all_sig = adaptive(10);
        all_sig.observe(&[0.5, 0.5], 1.0);
        all_sig.observe(&[0.7, 0.3], 1.0);
        assert_eq!(all_sig.portion(2), 0.0);
    }

    #[test]
    fn history_is_bounded_by_kappa() {
        let mut a = Allocator::new(AllocationKind::Adaptive, 10, 8.0, 3, 0.6);
        for i in 0..20 {
            a.observe(&[i as f64], i as f64 / 20.0);
        }
        assert!(a.freq_history.len() <= 4);
        assert!(a.sig_history.len() <= 3);
        // Deviation computed from the last 3 previous snapshots:
        // last = 19, prev mean = (16+17+18)/3 = 17 -> dev = 2.
        assert!((a.deviation() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn larger_window_reduces_portion() {
        let mut small_w = adaptive(10);
        let mut large_w = adaptive(40);
        for a in [&mut small_w, &mut large_w] {
            a.observe(&[0.5, 0.5], 0.1);
            a.observe(&[0.6, 0.4], 0.1);
        }
        assert!(large_w.portion(2) < small_w.portion(2));
    }
}
