//! The dynamic active-user set of Algorithm 1 (§III-E/F).
//!
//! Users (stream entities) move through three states:
//!
//! - **Active** — eligible for sampling;
//! - **Inactive** — reported within the current window; recycled (set back
//!   to Active) exactly `w` timestamps after reporting (Alg. 1 line 9),
//!   which is what makes population division satisfy w-event LDP;
//! - **Quitted** — delivered the final `Quit` report (or silently left);
//!   never reports again.
//!
//! The registry maintains the active set *incrementally*: every status
//! transition updates a dense membership vector (swap-remove indexed by a
//! position map), so [`UserRegistry::active_count`] is O(1) and
//! [`UserRegistry::active_users`] touches only the currently active users
//! — long-quitted ids never slow bookkeeping down, no matter how much the
//! stream churns. The sorted listing is produced lazily into the same
//! reused buffer, re-sorted only after a mutation.

use std::collections::HashMap;

/// Lifecycle state of a reporting unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserStatus {
    /// Eligible for sampling.
    Active,
    /// Reported recently; waiting to be recycled.
    Inactive,
    /// Left the stream; permanently retired.
    Quitted,
}

/// Registry tracking every observed user's status.
#[derive(Debug, Clone, Default)]
pub struct UserRegistry {
    status: HashMap<u64, UserStatus>,
    /// users who reported at time t (for recycling at t + w).
    by_report_time: HashMap<u64, Vec<u64>>,
    /// Dense membership vector of the Active users (unordered; positions
    /// tracked by `active_pos` for O(1) removal).
    active_set: Vec<u64>,
    /// Position of each Active user inside `active_set`.
    active_pos: HashMap<u64, u32>,
    /// Reused sorted copy of `active_set`, rebuilt lazily after a
    /// mutation; `active_set` itself is never reordered by reads.
    sorted_buf: Vec<u64>,
    /// Whether `sorted_buf` currently mirrors `active_set`.
    sorted_valid: bool,
}

impl UserRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_active(&mut self, user: u64) {
        debug_assert!(!self.active_pos.contains_key(&user));
        self.active_pos.insert(user, self.active_set.len() as u32);
        self.active_set.push(user);
        self.sorted_valid = false;
    }

    fn remove_active(&mut self, user: u64) {
        if let Some(pos) = self.active_pos.remove(&user) {
            self.active_set.swap_remove(pos as usize);
            if let Some(&moved) = self.active_set.get(pos as usize) {
                self.active_pos.insert(moved, pos);
            }
            self.sorted_valid = false;
        }
    }

    /// Register a newly arrived user as Active (no effect if known).
    pub fn register(&mut self, user: u64) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.status.entry(user) {
            e.insert(UserStatus::Active);
            self.add_active(user);
        }
    }

    /// Current status, if the user has been seen.
    pub fn status(&self, user: u64) -> Option<UserStatus> {
        self.status.get(&user).copied()
    }

    /// Mark a user as having reported at `t` (Active → Inactive).
    pub fn mark_reported(&mut self, user: u64, t: u64) {
        debug_assert_eq!(self.status.get(&user), Some(&UserStatus::Active), "user {user}");
        self.status.insert(user, UserStatus::Inactive);
        self.remove_active(user);
        self.by_report_time.entry(t).or_default().push(user);
    }

    /// Permanently retire a user.
    pub fn mark_quitted(&mut self, user: u64) {
        if self.status.insert(user, UserStatus::Quitted) == Some(UserStatus::Active) {
            self.remove_active(user);
        }
    }

    /// Recycle users that reported at `t − w` (Alg. 1 line 9): Inactive →
    /// Active. Quitted users stay quitted.
    pub fn recycle(&mut self, t: u64, w: usize) {
        let Some(report_t) = t.checked_sub(w as u64) else {
            return;
        };
        if let Some(users) = self.by_report_time.remove(&report_t) {
            for u in users {
                if self.status.get(&u) == Some(&UserStatus::Inactive) {
                    self.status.insert(u, UserStatus::Active);
                    self.add_active(u);
                }
            }
        }
    }

    /// All Active users, sorted for determinism. Copies the maintained
    /// membership set into a reused buffer and sorts it — O(a log a) over
    /// the *active* users after a mutation, O(1) when the set is
    /// unchanged, and never a scan over the full seen-user map (the
    /// membership vector and its position index are left untouched).
    pub fn active_users(&mut self) -> &[u64] {
        if !self.sorted_valid {
            self.sorted_buf.clear();
            self.sorted_buf.extend_from_slice(&self.active_set);
            self.sorted_buf.sort_unstable();
            self.sorted_valid = true;
        }
        &self.sorted_buf
    }

    /// Number of Active users — O(1), maintained incrementally.
    pub fn active_count(&self) -> usize {
        self.active_set.len()
    }

    /// Number of users ever observed.
    pub fn total_seen(&self) -> usize {
        self.status.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incrementally maintained count/set must always agree with a
    /// full scan of the status map.
    fn check_consistency(r: &mut UserRegistry) {
        let mut expect: Vec<u64> =
            r.status.iter().filter(|(_, &s)| s == UserStatus::Active).map(|(&u, _)| u).collect();
        expect.sort_unstable();
        assert_eq!(r.active_count(), expect.len());
        assert_eq!(r.active_users(), expect.as_slice());
    }

    #[test]
    fn lifecycle() {
        let mut r = UserRegistry::new();
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Active));
        assert_eq!(r.status(2), None);
        r.mark_reported(1, 5);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        // Recycled exactly w steps later.
        r.recycle(9, 5); // t - w = 4: nothing
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        r.recycle(10, 5); // t - w = 5: user 1
        assert_eq!(r.status(1), Some(UserStatus::Active));
        check_consistency(&mut r);
    }

    #[test]
    fn register_does_not_reset_status() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.mark_reported(1, 0);
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn quitted_users_are_not_recycled() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.mark_reported(1, 3);
        r.mark_quitted(1);
        r.recycle(8, 5);
        assert_eq!(r.status(1), Some(UserStatus::Quitted));
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn active_listing_is_sorted_and_counted() {
        let mut r = UserRegistry::new();
        for u in [5, 1, 9, 3] {
            r.register(u);
        }
        r.mark_reported(3, 0);
        assert_eq!(r.active_users(), &[1, 5, 9]);
        assert_eq!(r.active_count(), 3);
        assert_eq!(r.total_seen(), 4);
    }

    #[test]
    fn recycle_underflow_is_safe() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.recycle(3, 10); // t < w: no-op
        assert_eq!(r.status(1), Some(UserStatus::Active));
    }

    #[test]
    fn multiple_users_same_report_time() {
        let mut r = UserRegistry::new();
        for u in 0..4 {
            r.register(u);
            r.mark_reported(u, 2);
        }
        r.recycle(7, 5);
        assert_eq!(r.active_count(), 4);
    }

    #[test]
    fn incremental_set_tracks_churn() {
        // A churn-heavy schedule interleaving every transition; the
        // maintained set must agree with a full scan at every point, and
        // listings between mutations must not re-sort (same slice).
        let mut r = UserRegistry::new();
        for u in 0..50 {
            r.register(u);
        }
        check_consistency(&mut r);
        for u in (0..50).step_by(3) {
            r.mark_reported(u, 1);
        }
        check_consistency(&mut r);
        for u in (0..50).step_by(7) {
            r.mark_quitted(u);
        }
        check_consistency(&mut r);
        r.recycle(6, 5); // reporters at t=1 recycle, quitted stay out
        check_consistency(&mut r);
        // Quitting an Inactive user must not touch the active set.
        r.register(100);
        r.mark_reported(100, 6);
        let before = r.active_users().to_vec();
        r.mark_quitted(100);
        assert_eq!(r.active_users(), before.as_slice());
        check_consistency(&mut r);
        // mark_quitted on an Active user removes exactly that user.
        r.mark_quitted(1);
        assert!(!r.active_users().contains(&1));
        check_consistency(&mut r);
    }
}
