//! The dynamic active-user set of Algorithm 1 (§III-E/F).
//!
//! Users (stream entities) move through three states:
//!
//! - **Active** — eligible for sampling;
//! - **Inactive** — reported within the current window; recycled (set back
//!   to Active) exactly `w` timestamps after reporting (Alg. 1 line 9),
//!   which is what makes population division satisfy w-event LDP;
//! - **Quitted** — delivered the final `Quit` report (or silently left);
//!   never reports again.

use std::collections::HashMap;

/// Lifecycle state of a reporting unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserStatus {
    /// Eligible for sampling.
    Active,
    /// Reported recently; waiting to be recycled.
    Inactive,
    /// Left the stream; permanently retired.
    Quitted,
}

/// Registry tracking every observed user's status.
#[derive(Debug, Clone, Default)]
pub struct UserRegistry {
    status: HashMap<u64, UserStatus>,
    /// users who reported at time t (for recycling at t + w).
    by_report_time: HashMap<u64, Vec<u64>>,
}

impl UserRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a newly arrived user as Active (no effect if known).
    pub fn register(&mut self, user: u64) {
        self.status.entry(user).or_insert(UserStatus::Active);
    }

    /// Current status, if the user has been seen.
    pub fn status(&self, user: u64) -> Option<UserStatus> {
        self.status.get(&user).copied()
    }

    /// Mark a user as having reported at `t` (Active → Inactive).
    pub fn mark_reported(&mut self, user: u64, t: u64) {
        debug_assert_eq!(self.status.get(&user), Some(&UserStatus::Active), "user {user}");
        self.status.insert(user, UserStatus::Inactive);
        self.by_report_time.entry(t).or_default().push(user);
    }

    /// Permanently retire a user.
    pub fn mark_quitted(&mut self, user: u64) {
        self.status.insert(user, UserStatus::Quitted);
    }

    /// Recycle users that reported at `t − w` (Alg. 1 line 9): Inactive →
    /// Active. Quitted users stay quitted.
    pub fn recycle(&mut self, t: u64, w: usize) {
        let Some(report_t) = t.checked_sub(w as u64) else {
            return;
        };
        if let Some(users) = self.by_report_time.remove(&report_t) {
            for u in users {
                if self.status.get(&u) == Some(&UserStatus::Inactive) {
                    self.status.insert(u, UserStatus::Active);
                }
            }
        }
    }

    /// All Active users, sorted for determinism.
    pub fn active_users(&self) -> Vec<u64> {
        let mut users: Vec<u64> =
            self.status.iter().filter(|(_, &s)| s == UserStatus::Active).map(|(&u, _)| u).collect();
        users.sort_unstable();
        users
    }

    /// Number of Active users.
    pub fn active_count(&self) -> usize {
        self.status.values().filter(|&&s| s == UserStatus::Active).count()
    }

    /// Number of users ever observed.
    pub fn total_seen(&self) -> usize {
        self.status.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut r = UserRegistry::new();
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Active));
        assert_eq!(r.status(2), None);
        r.mark_reported(1, 5);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        // Recycled exactly w steps later.
        r.recycle(9, 5); // t - w = 4: nothing
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        r.recycle(10, 5); // t - w = 5: user 1
        assert_eq!(r.status(1), Some(UserStatus::Active));
    }

    #[test]
    fn register_does_not_reset_status() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.mark_reported(1, 0);
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
    }

    #[test]
    fn quitted_users_are_not_recycled() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.mark_reported(1, 3);
        r.mark_quitted(1);
        r.recycle(8, 5);
        assert_eq!(r.status(1), Some(UserStatus::Quitted));
    }

    #[test]
    fn active_listing_is_sorted_and_counted() {
        let mut r = UserRegistry::new();
        for u in [5, 1, 9, 3] {
            r.register(u);
        }
        r.mark_reported(3, 0);
        assert_eq!(r.active_users(), vec![1, 5, 9]);
        assert_eq!(r.active_count(), 3);
        assert_eq!(r.total_seen(), 4);
    }

    #[test]
    fn recycle_underflow_is_safe() {
        let mut r = UserRegistry::new();
        r.register(1);
        r.recycle(3, 10); // t < w: no-op
        assert_eq!(r.status(1), Some(UserStatus::Active));
    }

    #[test]
    fn multiple_users_same_report_time() {
        let mut r = UserRegistry::new();
        for u in 0..4 {
            r.register(u);
            r.mark_reported(u, 2);
        }
        r.recycle(7, 5);
        assert_eq!(r.active_count(), 4);
    }
}
