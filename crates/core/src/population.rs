//! The dynamic active-user set of Algorithm 1 (§III-E/F).
//!
//! Users (stream entities) move through three states:
//!
//! - **Active** — eligible for sampling;
//! - **Inactive** — reported within the current window; recycled (set back
//!   to Active) exactly `w` timestamps after reporting (Alg. 1 line 9),
//!   which is what makes population division satisfy w-event LDP;
//! - **Quitted** — delivered the final `Quit` report (or silently left);
//!   never reports again.
//!
//! The registry maintains the active set *incrementally*: every status
//! transition updates a dense membership vector (swap-remove indexed by a
//! position map), so [`UserRegistry::active_count`] is O(1) and
//! [`UserRegistry::active_users`] touches only the currently active users
//! — long-quitted ids never slow bookkeeping down, no matter how much the
//! stream churns. The sorted listing is produced lazily into the same
//! reused buffer, re-sorted only after a mutation.
//!
//! Report-time bookkeeping is a *ring buffer* of `w` slots: a user that
//! reports at `t` lands in slot `t mod w` and is recycled exactly `w`
//! steps later from the same slot, whose buffer is drained and reused —
//! recycling allocates nothing in steady state, unlike the former
//! per-timestamp `HashMap<u64, Vec<u64>>` that allocated one vector per
//! distinct report time.

use crate::wal::{Dec, Enc};
use std::collections::BTreeMap;

/// One ring-buffer slot: the users that reported at `t`, recycled when the
/// window wraps back around to `t mod w`.
#[derive(Debug, Clone, Default)]
struct ReportSlot {
    /// The timestamp these reporters are from (slots are reused every `w`
    /// steps; `u64::MAX` marks a never-used slot).
    t: u64,
    /// The reporters, drained on recycle with capacity retained.
    users: Vec<u64>,
}

/// Lifecycle state of a reporting unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserStatus {
    /// Eligible for sampling.
    Active,
    /// Reported recently; waiting to be recycled.
    Inactive,
    /// Left the stream; permanently retired.
    Quitted,
}

/// Registry tracking every observed user's status for a fixed recycling
/// window `w`.
#[derive(Debug, Clone)]
pub struct UserRegistry {
    status: BTreeMap<u64, UserStatus>,
    /// Window size `w`: a reporter at `t` is recycled at `t + w`.
    window: u64,
    /// Ring of `w` report slots; a reporter at `t` lives in slot
    /// `t mod w` until recycled.
    ring: Vec<ReportSlot>,
    /// Dense membership vector of the Active users (unordered; positions
    /// tracked by `active_pos` for O(1) removal).
    active_set: Vec<u64>,
    /// Position of each Active user inside `active_set`.
    active_pos: BTreeMap<u64, u32>,
    /// Reused sorted copy of `active_set`, rebuilt lazily after a
    /// mutation; `active_set` itself is never reordered by reads.
    sorted_buf: Vec<u64>,
    /// Whether `sorted_buf` currently mirrors `active_set`.
    sorted_valid: bool,
}

impl UserRegistry {
    /// Empty registry for recycling window `w` (≥ 1).
    pub fn new(w: usize) -> Self {
        assert!(w >= 1, "window must be >= 1");
        UserRegistry {
            status: BTreeMap::new(),
            window: w as u64,
            ring: vec![ReportSlot { t: u64::MAX, users: Vec::new() }; w],
            active_set: Vec::new(),
            active_pos: BTreeMap::new(),
            sorted_buf: Vec::new(),
            sorted_valid: false,
        }
    }

    fn add_active(&mut self, user: u64) {
        debug_assert!(!self.active_pos.contains_key(&user));
        self.active_pos.insert(user, self.active_set.len() as u32);
        self.active_set.push(user);
        self.sorted_valid = false;
    }

    fn remove_active(&mut self, user: u64) {
        if let Some(pos) = self.active_pos.remove(&user) {
            self.active_set.swap_remove(pos as usize); // xtask:order(reads go through active_users(), which rebuilds sorted_buf)
            if let Some(&moved) = self.active_set.get(pos as usize) {
                self.active_pos.insert(moved, pos);
            }
            self.sorted_valid = false;
        }
    }

    /// Register a newly arrived user as Active (no effect if known).
    pub fn register(&mut self, user: u64) {
        if let std::collections::btree_map::Entry::Vacant(e) = self.status.entry(user) {
            e.insert(UserStatus::Active);
            self.add_active(user);
        }
    }

    /// Current status, if the user has been seen.
    pub fn status(&self, user: u64) -> Option<UserStatus> {
        self.status.get(&user).copied()
    }

    /// Mark a user as having reported at `t` (Active → Inactive).
    ///
    /// The caller must recycle (`[Self::recycle]` at `t`) before marking
    /// new reporters at `t`, as Algorithm 1 does: the slot being claimed
    /// is the one the reporters from `t − w` just vacated.
    pub fn mark_reported(&mut self, user: u64, t: u64) {
        debug_assert_eq!(self.status.get(&user), Some(&UserStatus::Active), "user {user}");
        self.status.insert(user, UserStatus::Inactive);
        self.remove_active(user);
        let idx = (t % self.window) as usize;
        let slot = &mut self.ring[idx];
        if slot.t != t {
            debug_assert!(
                slot.users.is_empty(),
                "slot {idx} still holds unrecycled reporters from t={}",
                slot.t
            );
            slot.users.clear();
            slot.t = t;
        }
        slot.users.push(user);
    }

    /// Permanently retire a user.
    pub fn mark_quitted(&mut self, user: u64) {
        if self.status.insert(user, UserStatus::Quitted) == Some(UserStatus::Active) {
            self.remove_active(user);
        }
    }

    /// Recycle users that reported at `t − w` (Alg. 1 line 9): Inactive →
    /// Active. Quitted users stay quitted. Allocation-free: the slot's
    /// buffer is drained in place and its capacity reused by the
    /// reporters at `t`.
    pub fn recycle(&mut self, t: u64) {
        let Some(report_t) = t.checked_sub(self.window) else {
            return;
        };
        let idx = (report_t % self.window) as usize;
        if self.ring[idx].t != report_t {
            return;
        }
        let mut users = std::mem::take(&mut self.ring[idx].users);
        for &u in &users {
            if self.status.get(&u) == Some(&UserStatus::Inactive) {
                self.status.insert(u, UserStatus::Active);
                self.add_active(u);
            }
        }
        users.clear();
        self.ring[idx].users = users;
    }

    /// All Active users, sorted for determinism. Copies the maintained
    /// membership set into a reused buffer and sorts it — O(a log a) over
    /// the *active* users after a mutation, O(1) when the set is
    /// unchanged, and never a scan over the full seen-user map (the
    /// membership vector and its position index are left untouched).
    pub fn active_users(&mut self) -> &[u64] {
        if !self.sorted_valid {
            self.sorted_buf.clear();
            self.sorted_buf.extend_from_slice(&self.active_set);
            self.sorted_buf.sort_unstable();
            self.sorted_valid = true;
        }
        &self.sorted_buf
    }

    /// Number of Active users — O(1), maintained incrementally.
    pub fn active_count(&self) -> usize {
        self.active_set.len()
    }

    /// Number of users ever observed.
    pub fn total_seen(&self) -> usize {
        self.status.len()
    }

    /// Forget every user in place, keeping the window and every allocation
    /// (maps, ring-slot buffers, the sorted listing buffer).
    pub fn reset(&mut self) {
        self.status.clear();
        for slot in &mut self.ring {
            slot.t = u64::MAX;
            slot.users.clear();
        }
        self.active_set.clear();
        self.active_pos.clear();
        self.sorted_buf.clear();
        self.sorted_valid = false;
    }

    /// Serialize the registry for a checkpoint: the status map in sorted
    /// user order (deterministic bytes), then the ring slots in index
    /// order. The window is not serialized — it is pinned by the session
    /// fingerprint.
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        let mut users: Vec<u64> = self.status.keys().copied().collect();
        users.sort_unstable();
        enc.usize(users.len());
        for &u in &users {
            enc.u64(u);
            enc.u8(match self.status[&u] {
                UserStatus::Active => 0,
                UserStatus::Inactive => 1,
                UserStatus::Quitted => 2,
            });
        }
        enc.usize(self.ring.len());
        for slot in &self.ring {
            enc.u64(slot.t);
            enc.usize(slot.users.len());
            for &u in &slot.users {
                enc.u64(u);
            }
        }
    }

    /// Restore from [`Self::encode_into`] output. The active membership
    /// set is rebuilt from the decoded statuses (in sorted user order —
    /// reads go through the sorted listing, so internal order is
    /// unobservable).
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.reset();
        let seen = dec.usize()?;
        for _ in 0..seen {
            let user = dec.u64()?;
            let status = match dec.u8()? {
                0 => UserStatus::Active,
                1 => UserStatus::Inactive,
                2 => UserStatus::Quitted,
                other => return Err(format!("unknown user status tag {other}")),
            };
            if self.status.insert(user, status).is_some() {
                return Err(format!("user {user} appears twice in the checkpoint"));
            }
            if status == UserStatus::Active {
                self.add_active(user);
            }
        }
        let slots = dec.usize()?;
        if slots != self.ring.len() {
            return Err(format!(
                "checkpoint ring has {slots} slots, this session's window needs {}",
                self.ring.len()
            ));
        }
        for slot in &mut self.ring {
            slot.t = dec.u64()?;
            let n = dec.usize()?;
            slot.users.reserve(n);
            for _ in 0..n {
                slot.users.push(dec.u64()?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incrementally maintained count/set must always agree with a
    /// full scan of the status map.
    fn check_consistency(r: &mut UserRegistry) {
        let mut expect: Vec<u64> =
            r.status.iter().filter(|(_, &s)| s == UserStatus::Active).map(|(&u, _)| u).collect();
        expect.sort_unstable();
        assert_eq!(r.active_count(), expect.len());
        assert_eq!(r.active_users(), expect.as_slice());
    }

    #[test]
    fn lifecycle() {
        let mut r = UserRegistry::new(5);
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Active));
        assert_eq!(r.status(2), None);
        r.mark_reported(1, 5);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        // Recycled exactly w steps later.
        r.recycle(9); // t - w = 4: nothing
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        r.recycle(10); // t - w = 5: user 1
        assert_eq!(r.status(1), Some(UserStatus::Active));
        check_consistency(&mut r);
    }

    #[test]
    fn register_does_not_reset_status() {
        let mut r = UserRegistry::new(5);
        r.register(1);
        r.mark_reported(1, 0);
        r.register(1);
        assert_eq!(r.status(1), Some(UserStatus::Inactive));
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn quitted_users_are_not_recycled() {
        let mut r = UserRegistry::new(5);
        r.register(1);
        r.mark_reported(1, 3);
        r.mark_quitted(1);
        r.recycle(8);
        assert_eq!(r.status(1), Some(UserStatus::Quitted));
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn active_listing_is_sorted_and_counted() {
        let mut r = UserRegistry::new(5);
        for u in [5, 1, 9, 3] {
            r.register(u);
        }
        r.mark_reported(3, 0);
        assert_eq!(r.active_users(), &[1, 5, 9]);
        assert_eq!(r.active_count(), 3);
        assert_eq!(r.total_seen(), 4);
    }

    #[test]
    fn recycle_underflow_is_safe() {
        let mut r = UserRegistry::new(10);
        r.register(1);
        r.recycle(3); // t < w: no-op
        assert_eq!(r.status(1), Some(UserStatus::Active));
    }

    #[test]
    fn multiple_users_same_report_time() {
        let mut r = UserRegistry::new(5);
        for u in 0..4 {
            r.register(u);
            r.mark_reported(u, 2);
        }
        r.recycle(7);
        assert_eq!(r.active_count(), 4);
    }

    #[test]
    fn ring_recycles_across_many_window_wraps() {
        // Drive the ring through several full wrap-arounds with the
        // engine's call pattern (recycle at t, then report at t): every
        // reporter must come back exactly w steps later, never earlier,
        // and slot reuse must not leak or double-recycle users.
        let w = 4usize;
        let mut r = UserRegistry::new(w);
        for u in 0..8 {
            r.register(u);
        }
        let mut inactive_until: BTreeMap<u64, u64> = BTreeMap::new();
        for t in 0..40u64 {
            r.recycle(t);
            for (&u, &until) in &inactive_until {
                let expect = if t < until { UserStatus::Inactive } else { UserStatus::Active };
                assert_eq!(r.status(u), Some(expect), "user {u} at t={t}");
            }
            // Users 0..w report on a rotating schedule: u reports whenever
            // t % w == u % w (each exactly once per window).
            for u in 0..4u64 {
                if t % w as u64 == u % w as u64 {
                    assert_eq!(r.status(u), Some(UserStatus::Active), "u={u} t={t}");
                    r.mark_reported(u, t);
                    inactive_until.insert(u, t + w as u64);
                }
            }
            check_consistency(&mut r);
        }
    }

    #[test]
    fn incremental_set_tracks_churn() {
        // A churn-heavy schedule interleaving every transition; the
        // maintained set must agree with a full scan at every point, and
        // listings between mutations must not re-sort (same slice).
        let mut r = UserRegistry::new(5);
        for u in 0..50 {
            r.register(u);
        }
        check_consistency(&mut r);
        for u in (0..50).step_by(3) {
            r.mark_reported(u, 1);
        }
        check_consistency(&mut r);
        for u in (0..50).step_by(7) {
            r.mark_quitted(u);
        }
        check_consistency(&mut r);
        r.recycle(6); // reporters at t=1 recycle, quitted stay out
        check_consistency(&mut r);
        // Quitting an Inactive user must not touch the active set.
        r.register(100);
        r.mark_reported(100, 6);
        let before = r.active_users().to_vec();
        r.mark_quitted(100);
        assert_eq!(r.active_users(), before.as_slice());
        check_consistency(&mut r);
        // mark_quitted on an Active user removes exactly that user.
        r.mark_quitted(1);
        assert!(!r.active_users().contains(&1));
        check_consistency(&mut r);
    }
}
