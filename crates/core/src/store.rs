//! Columnar trajectory storage for the synthesis hot path (§III-D at
//! millions-of-users scale).
//!
//! The Vec-of-structs layout this replaces (`OpenStream { cells: Vec }`)
//! paid one heap pointer chase per live stream per timestamp in the fused
//! quit+extend pass, and `finish()` copied every stream into a fresh
//! per-stream `Vec` before metrics could run. The `StreamStore` keeps the
//! per-step state in structure-of-arrays form instead:
//!
//! - **Head columns** (`Columns`): the fields the fused pass actually
//!   touches — current cell (`heads`), `lens`, plus `ids`/`starts`/`links`
//!   bookkeeping — live in parallel vectors, so advancing `n` streams reads
//!   and writes contiguous memory.
//! - **Tail arena** (`TailArena`): historical cells are append-only
//!   `TailNode`s in fixed-size chunks, each linking backward to the
//!   stream's previous node. Extending a stream appends one node
//!   (sequential writes within a step) and never moves old cells; chunks
//!   mean growth never reallocates or copies the arena.
//! - **Finished region**: retiring a stream moves its five column entries
//!   into a second `Columns` — O(1), cells stay where they are in the
//!   arena.
//!
//! Release (`StreamStore::into_dataset`) walks each chain once, backward,
//! into a single flat cell column sorted by stream id and hands the result
//! to [`GriddedDataset::from_columns`] — no per-stream `Vec` is ever
//! allocated on the release path.
//!
//! Sharded synthesis copies disjoint index ranges of the head columns into
//! per-worker `Columns` (a handful of `memcpy`s, not a per-stream
//! shuffle); workers append tail nodes into private buffers with
//! shard-local addresses, and the merge relocates each buffer to the end of
//! the shared arena in shard order, offsetting the survivors' links — which
//! keeps the fixed-`(seed, threads)` output bit-identical to the sequential
//! ordering semantics.
//!
//! **Read-only view layer.** The streaming session API observes the store
//! *between* steps through a [`SnapshotView`]: a borrowed, zero-copy
//! per-timestamp view over the live head columns plus the finished region.
//! Iterating a snapshot yields [`SnapshotStream`]s whose cells are read
//! straight out of the arena chains — no per-stream `Vec` is ever
//! materialized, so publishing the synthetic database at every timestamp
//! (the paper's defining property, §III-D) costs nothing beyond what the
//! consumer actually reads.

use crate::compact::FrozenStore;
use crate::wal::{Dec, Enc};
use retrasyn_geo::{CellId, GriddedDataset, Space};

/// Arena address type. The default `u32` keeps `TailNode` at 8 bytes and
/// caps the arena just below 2³² nodes; the `large-arena` feature widens
/// addresses (and every link column) to `u64` for sessions whose total
/// history exceeds that ceiling.
#[cfg(not(feature = "large-arena"))]
pub(crate) type Addr = u32;
/// Arena address type (`large-arena`: 64-bit, no practical ceiling).
#[cfg(feature = "large-arena")]
pub(crate) type Addr = u64;

/// Sentinel link for a stream with no tail (length 1).
pub(crate) const NO_LINK: Addr = Addr::MAX;

/// Portable (width-independent) serialized form of an arena link: always a
/// `u64`, with `NO_LINK` mapped to `u64::MAX` so checkpoints written with
/// one address width load under the other (as long as they fit).
pub(crate) fn link_to_u64(link: Addr) -> u64 {
    if link == NO_LINK {
        u64::MAX
    } else {
        link as u64
    }
}

/// Inverse of [`link_to_u64`]; fails (instead of wrapping) when a link
/// needs more address bits than this build has.
pub(crate) fn link_from_u64(v: u64) -> Result<Addr, String> {
    if v == u64::MAX {
        Ok(NO_LINK)
    } else if v >= NO_LINK as u64 {
        Err(format!(
            "arena link {v} exceeds this build's address width; \
             enable the `large-arena` feature"
        ))
    } else {
        Ok(v as Addr)
    }
}

const CHUNK_BITS: u32 = 16;
const CHUNK_LEN: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_LEN - 1;

/// One arena entry: the cell a stream occupied before its most recent
/// extension, linking backward to the node before that (`NO_LINK` at the
/// stream's first cell).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TailNode {
    pub(crate) cell: CellId,
    pub(crate) prev: Addr,
}

/// Chunked append-only arena of `TailNode`s. Addresses are dense [`Addr`]
/// indices; fixed-size chunks keep them stable and make growth O(1) —
/// no reallocation ever copies existing nodes. [`TailArena::clear`] keeps
/// the chunks around, so session churn (reset, recovery replay) reuses
/// warm allocations instead of re-growing from nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct TailArena {
    chunks: Vec<Vec<TailNode>>,
    len: usize,
}

impl TailArena {
    /// Number of nodes stored.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Node at `addr`.
    #[inline]
    pub(crate) fn get(&self, addr: Addr) -> TailNode {
        self.chunks[addr as usize >> CHUNK_BITS][addr as usize & CHUNK_MASK]
    }

    /// Drop all nodes but keep every chunk allocation; subsequent appends
    /// refill the existing chunks in place.
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of chunk allocations currently held (retained across
    /// [`Self::clear`]).
    #[cfg(test)]
    pub(crate) fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Make the chunk owning address `self.len` ready for appending. The
    /// exhaustion check lives here — once per `CHUNK_LEN` appends, not on
    /// the hot path — and is a hard `assert`: past it, `len as Addr` would
    /// wrap (and `NO_LINK` would collide with a real address), silently
    /// cross-linking chains in release builds. Capping at the last whole
    /// chunk below `NO_LINK` keeps every address the new chunk can hand
    /// out strictly below the sentinel. A chunk retained by
    /// [`Self::clear`] is reused (cleared) instead of allocating.
    fn grow(&mut self) {
        assert!(
            (self.len + CHUNK_LEN) as u128 <= NO_LINK as u128,
            "tail arena address space exhausted ({} nodes); \
             enable the `large-arena` feature for 64-bit addresses",
            self.len
        );
        let idx = self.len >> CHUNK_BITS;
        if idx < self.chunks.len() {
            self.chunks[idx].clear();
        } else {
            self.chunks.push(Vec::with_capacity(CHUNK_LEN));
        }
    }

    /// Append one node, returning its address.
    #[inline]
    pub(crate) fn push(&mut self, node: TailNode) -> Addr {
        if self.len & CHUNK_MASK == 0 {
            self.grow();
        }
        let addr = self.len as Addr;
        self.chunks[self.len >> CHUNK_BITS].push(node);
        self.len += 1;
        addr
    }

    /// Bulk-append `nodes` (chunk-wise copies), preserving order.
    pub(crate) fn extend_from_slice(&mut self, nodes: &[TailNode]) {
        let mut rest = nodes;
        while !rest.is_empty() {
            if self.len & CHUNK_MASK == 0 {
                self.grow();
            }
            let room = CHUNK_LEN - (self.len & CHUNK_MASK);
            let take = room.min(rest.len());
            self.chunks[self.len >> CHUNK_BITS].extend_from_slice(&rest[..take]);
            self.len += take;
            rest = &rest[take..];
        }
    }

    /// Serialize every node in address order (checkpoint format: links as
    /// portable `u64`s, see [`link_to_u64`]).
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        enc.usize(self.len);
        for addr in 0..self.len {
            let node = self.get(addr as Addr);
            enc.u32(node.cell.0);
            enc.u64(link_to_u64(node.prev));
        }
    }

    /// Rebuild from [`Self::encode_into`] output. Re-pushing in address
    /// order reproduces identical addresses. Each node's `prev` must point
    /// strictly backward (or be `NO_LINK`) — the invariant append-only
    /// construction guarantees — which rules out out-of-bounds reads and
    /// cycles for any payload this accepts.
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.clear();
        let n = dec.usize()?;
        for addr in 0..n {
            let cell = CellId(dec.u32()?);
            let prev = link_from_u64(dec.u64()?)?;
            if prev != NO_LINK && prev as usize >= addr {
                return Err(format!("arena node {addr} links forward to {prev}"));
            }
            self.push(TailNode { cell, prev });
        }
        Ok(())
    }
}

/// Where a pass appends tail nodes: the shared arena directly (sequential
/// paths — addresses are global immediately) or a per-shard buffer (pool
/// workers — addresses are shard-local until the merge relocates the
/// buffer and offsets the links).
pub(crate) trait TailSink {
    /// Append one node, returning its address in this sink's space.
    fn append_node(&mut self, node: TailNode) -> Addr;
}

impl TailSink for TailArena {
    #[inline]
    fn append_node(&mut self, node: TailNode) -> Addr {
        self.push(node)
    }
}

impl TailSink for Vec<TailNode> {
    #[inline]
    fn append_node(&mut self, node: TailNode) -> Addr {
        let addr = self.len() as Addr;
        self.push(node);
        addr
    }
}

/// Structure-of-arrays stream state: five parallel columns, one row per
/// stream. The fused quit+extend pass touches `heads`/`lens`/`links`;
/// `ids`/`starts` ride along for retirement and release.
#[derive(Debug, Clone, Default)]
pub(crate) struct Columns {
    /// Current (most recent) cell per stream — the hot column.
    pub(crate) heads: Vec<CellId>,
    /// Stream ids.
    pub(crate) ids: Vec<u64>,
    /// Entering timestamps.
    pub(crate) starts: Vec<u64>,
    /// Cells reported so far (chain length + 1).
    pub(crate) lens: Vec<u32>,
    /// Arena address of the previous cell's node (`NO_LINK` if length 1).
    pub(crate) links: Vec<Addr>,
}

impl Columns {
    /// Number of rows.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether there are no rows.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Drop all rows, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.heads.clear();
        self.ids.clear();
        self.starts.clear();
        self.lens.clear();
        self.links.clear();
    }

    /// Append one row.
    #[inline]
    pub(crate) fn push(&mut self, id: u64, start: u64, head: CellId, len: u32, link: Addr) {
        self.heads.push(head);
        self.ids.push(id);
        self.starts.push(start);
        self.lens.push(len);
        self.links.push(link);
    }

    /// `swap_remove` row `i` into `out` — O(1) retirement; the stream's
    /// cells never move.
    #[inline]
    pub(crate) fn swap_remove_into(&mut self, i: usize, out: &mut Columns) {
        out.heads.push(self.heads.swap_remove(i)); // xtask:allow(DET003, swap_remove_into is the audited retirement primitive; row order is a pure function of the seeded draws)
        out.ids.push(self.ids.swap_remove(i)); // xtask:allow(DET003, swap_remove_into is the audited retirement primitive; row order is a pure function of the seeded draws)
        out.starts.push(self.starts.swap_remove(i)); // xtask:allow(DET003, swap_remove_into is the audited retirement primitive; row order is a pure function of the seeded draws)
        out.lens.push(self.lens.swap_remove(i)); // xtask:allow(DET003, swap_remove_into is the audited retirement primitive; row order is a pure function of the seeded draws)
        out.links.push(self.links.swap_remove(i)); // xtask:allow(DET003, swap_remove_into is the audited retirement primitive; row order is a pure function of the seeded draws)
    }

    /// Extend stream `i` by one cell: its old head becomes a tail node in
    /// `sink`, the new cell takes the head slot.
    #[inline]
    pub(crate) fn extend_row<S: TailSink>(&mut self, i: usize, to: CellId, sink: &mut S) {
        let link = sink.append_node(TailNode { cell: self.heads[i], prev: self.links[i] });
        self.heads[i] = to;
        self.links[i] = link;
        self.lens[i] += 1;
    }

    /// Append rows `lo..hi` of `src` (five contiguous copies — the
    /// shard-out path).
    pub(crate) fn extend_from_range(&mut self, src: &Columns, lo: usize, hi: usize) {
        self.heads.extend_from_slice(&src.heads[lo..hi]);
        self.ids.extend_from_slice(&src.ids[lo..hi]);
        self.starts.extend_from_slice(&src.starts[lo..hi]);
        self.lens.extend_from_slice(&src.lens[lo..hi]);
        self.links.extend_from_slice(&src.links[lo..hi]);
    }

    /// Drain every row of `other` onto the end of `self`, preserving order
    /// and `other`'s capacity.
    pub(crate) fn append(&mut self, other: &mut Columns) {
        self.heads.append(&mut other.heads);
        self.ids.append(&mut other.ids);
        self.starts.append(&mut other.starts);
        self.lens.append(&mut other.lens);
        self.links.append(&mut other.links);
    }

    /// Serialize every row in order (checkpoint format).
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for i in 0..self.len() {
            enc.u32(self.heads[i].0);
            enc.u64(self.ids[i]);
            enc.u64(self.starts[i]);
            enc.u32(self.lens[i]);
            enc.u64(link_to_u64(self.links[i]));
        }
    }

    /// Rebuild from [`Self::encode_into`] output. Links are bounds-checked
    /// against `arena_len` so a decoded store can never walk outside its
    /// arena; lengths must be >= 1 (streams are never empty).
    pub(crate) fn decode_from(&mut self, dec: &mut Dec, arena_len: usize) -> Result<(), String> {
        self.clear();
        let n = dec.usize()?;
        for i in 0..n {
            let head = CellId(dec.u32()?);
            let id = dec.u64()?;
            let start = dec.u64()?;
            let len = dec.u32()?;
            let link = link_from_u64(dec.u64()?)?;
            if len == 0 {
                return Err(format!("stream row {i} has length 0"));
            }
            if link != NO_LINK && link as usize >= arena_len {
                return Err(format!("stream row {i} links past the arena ({link})"));
            }
            if (len == 1) != (link == NO_LINK) {
                return Err(format!("stream row {i} length/link mismatch"));
            }
            self.push(id, start, head, len, link);
        }
        Ok(())
    }
}

/// The synthesizer's columnar stream storage: live head columns, the shared
/// chunked tail arena, the finished region retirement moves rows into, and
/// the frozen region epoch compaction drains the finished rows out to (see
/// [`crate::compact`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamStore {
    /// Live streams (SoA).
    pub(crate) live: Columns,
    /// Retired streams (SoA; cells remain in the arena until compaction).
    pub(crate) finished: Columns,
    /// Historical cells of every live or finished stream.
    pub(crate) tail: TailArena,
    /// Epoch-compacted streams: flat forward-ordered cells, out of the
    /// arena entirely.
    pub(crate) frozen: FrozenStore,
}

impl StreamStore {
    /// Append a fresh length-1 live stream.
    #[inline]
    pub(crate) fn spawn(&mut self, id: u64, start: u64, cell: CellId) {
        self.live.push(id, start, cell, 1, NO_LINK);
    }

    /// Borrow the store as a read-only per-timestamp view covering
    /// `0..horizon`.
    pub(crate) fn snapshot(&self, horizon: u64) -> SnapshotView<'_> {
        SnapshotView { store: self, horizon }
    }

    /// Drop every stream and every arena node, retaining all allocations
    /// (column capacity, arena chunks, frozen buffers) for the next
    /// session.
    pub(crate) fn reset(&mut self) {
        self.live.clear();
        self.finished.clear();
        self.tail.clear();
        self.frozen.clear();
    }

    /// Arena nodes + live/finished head rows currently resident (the
    /// memory the compactor bounds; frozen cells are excluded — they are
    /// the compactor's output).
    pub(crate) fn resident_cells(&self) -> usize {
        self.tail.len() + self.live.len() + self.finished.len()
    }

    /// Serialize the whole store (checkpoint format): arena first so the
    /// column decoders can bounds-check their links against it.
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        self.tail.encode_into(enc);
        self.live.encode_into(enc);
        self.finished.encode_into(enc);
        self.frozen.encode_into(enc);
    }

    /// Rebuild from [`Self::encode_into`] output, reusing this store's
    /// allocations. Any structural inconsistency is an `Err`, never a
    /// panic.
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.tail.decode_from(dec)?;
        let arena_len = self.tail.len();
        self.live.decode_from(dec, arena_len)?;
        self.finished.decode_from(dec, arena_len)?;
        self.frozen.decode_from(dec)
    }

    /// Materialize the cells of a stream described by `(head, len, link)`
    /// into `out`, oldest first, by walking its chain backward.
    pub(crate) fn write_cells(&self, head: CellId, len: usize, link: Addr, out: &mut [CellId]) {
        debug_assert_eq!(out.len(), len);
        out[len - 1] = head;
        let mut addr = link;
        for slot in out[..len - 1].iter_mut().rev() {
            let node = self.tail.get(addr);
            *slot = node.cell;
            addr = node.prev;
        }
        debug_assert_eq!(addr, NO_LINK, "chain length disagrees with len column");
    }

    /// Close every live stream (in live order, matching the sequential
    /// retirement semantics) and release the whole store as an id-sorted
    /// columnar [`GriddedDataset`]: one flat cell column, no per-stream
    /// allocation. Frozen streams are merged back in by id — the release
    /// is bit-for-bit identical whether or not compaction ever ran.
    pub(crate) fn into_dataset<S: Space>(mut self, space: S, horizon: u64) -> GriddedDataset {
        {
            let StreamStore { live, finished, .. } = &mut self;
            finished.append(live);
        }
        let nf = self.frozen.num_streams();
        let n = nf + self.finished.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let i = i as usize;
            if i < nf {
                self.frozen.ids[i]
            } else {
                self.finished.ids[i - nf]
            }
        });
        let total: usize = self.frozen.total_cells()
            + self.finished.lens.iter().map(|&l| l as usize).sum::<usize>();
        let mut ids = Vec::with_capacity(n);
        let mut starts = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cells = vec![CellId(0); total];
        offsets.push(0usize);
        let mut pos = 0usize;
        for &oi in &order {
            let i = oi as usize;
            if i < nf {
                ids.push(self.frozen.ids[i]);
                starts.push(self.frozen.starts[i]);
                let src = self.frozen.cells_of(i);
                cells[pos..pos + src.len()].copy_from_slice(src);
                pos += src.len();
            } else {
                let i = i - nf;
                ids.push(self.finished.ids[i]);
                starts.push(self.finished.starts[i]);
                let len = self.finished.lens[i] as usize;
                self.write_cells(
                    self.finished.heads[i],
                    len,
                    self.finished.links[i],
                    &mut cells[pos..pos + len],
                );
                pos += len;
            }
            offsets.push(pos);
        }
        GriddedDataset::from_columns(space, ids, starts, offsets, cells, horizon)
    }
}

/// A borrowed, zero-copy view of the synthetic database at one timestamp —
/// what a streaming consumer observes *between* engine steps (the paper's
/// per-timestamp release, §III-D; reading it is post-processing and costs
/// no additional privacy budget).
///
/// The view borrows the store's live head columns and finished region
/// directly: constructing it allocates nothing, and iterating it yields
/// [`SnapshotStream`]s whose cells are read straight out of the tail-arena
/// chains. A snapshot taken after step `t` is bit-for-bit the length-`t+1`
/// prefix of the final release: every stream it contains reappears in the
/// released [`GriddedDataset`] with the snapshot's cells as a prefix.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    store: &'a StreamStore,
    horizon: u64,
}

impl<'a> SnapshotView<'a> {
    /// Number of timestamps this snapshot covers (`0..horizon`): the number
    /// of engine steps completed when it was taken.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of live synthetic streams.
    pub fn active_count(&self) -> usize {
        self.store.live.len()
    }

    /// Number of synthetic streams already terminated (including streams
    /// drained into the frozen region by epoch compaction).
    pub fn finished_count(&self) -> usize {
        self.store.frozen.num_streams() + self.store.finished.len()
    }

    /// Total number of streams (frozen + finished + live).
    pub fn num_streams(&self) -> usize {
        self.finished_count() + self.store.live.len()
    }

    /// Whether the snapshot holds no streams.
    pub fn is_empty(&self) -> bool {
        self.num_streams() == 0
    }

    /// Borrowed iteration over every stream: the terminated streams first
    /// (frozen epochs in compaction order, then the finished region), then
    /// the live population. Order within each region is the store's
    /// internal (retirement / spawn-and-swap) order, not id order — map by
    /// [`SnapshotStream::id`] to correlate snapshots across timestamps.
    pub fn streams(&self) -> impl ExactSizeIterator<Item = SnapshotStream<'a>> + Clone + '_ {
        let store = self.store;
        let frozen = store.frozen.num_streams();
        let finished = store.finished.len();
        (0..self.num_streams()).map(move |i| {
            if i < frozen {
                return store.frozen.stream(i);
            }
            let i = i - frozen;
            let (cols, row) =
                if i < finished { (&store.finished, i) } else { (&store.live, i - finished) };
            SnapshotStream {
                id: cols.ids[row],
                start: cols.starts[row],
                head: cols.heads[row],
                len: cols.lens[row],
                repr: StreamRepr::Chain { arena: &store.tail, link: cols.links[row] },
            }
        })
    }

    /// Borrowed iteration over the live streams only (the population a
    /// real-time monitor watches).
    pub fn live(&self) -> impl ExactSizeIterator<Item = SnapshotStream<'a>> + Clone + '_ {
        let store = self.store;
        (0..store.live.len()).map(move |row| SnapshotStream {
            id: store.live.ids[row],
            start: store.live.starts[row],
            head: store.live.heads[row],
            len: store.live.lens[row],
            repr: StreamRepr::Chain { arena: &store.tail, link: store.live.links[row] },
        })
    }

    /// Per-cell occupancy of the live population into a reused buffer
    /// (resized and zeroed here): one contiguous scan of the head column,
    /// no allocation after warm-up.
    pub fn occupancy_into(&self, num_cells: usize, counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(num_cells, 0);
        for head in &self.store.live.heads {
            counts[head.index()] += 1;
        }
    }

    /// Per-cell occupancy of the live population (allocating convenience
    /// wrapper over [`Self::occupancy_into`]).
    pub fn occupancy(&self, num_cells: usize) -> Vec<u64> {
        let mut counts = Vec::new();
        self.occupancy_into(num_cells, &mut counts);
        counts
    }
}

/// One synthetic stream inside a [`SnapshotView`]: four copied scalars plus
/// a borrow of the backing region — `Copy`, allocation-free. The region is
/// either a backward-linked chain in the tail arena (live / finished
/// streams) or a flat forward-ordered slice (streams drained into the
/// frozen region by epoch compaction); the accessors are identical either
/// way.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStream<'a> {
    id: u64,
    start: u64,
    head: CellId,
    len: u32,
    repr: StreamRepr<'a>,
}

/// Backing storage of a [`SnapshotStream`]'s cells.
#[derive(Debug, Clone, Copy)]
enum StreamRepr<'a> {
    /// Backward-linked chain in the tail arena; `link` is the address of
    /// the cell before the head (`NO_LINK` for length-1 streams).
    Chain { arena: &'a TailArena, link: Addr },
    /// Flat forward-ordered cells in the frozen region.
    Flat(&'a [CellId]),
}

impl<'a> SnapshotStream<'a> {
    /// A stream backed by a flat forward-ordered cell slice (the frozen
    /// region's layout). `cells` must be non-empty.
    pub(crate) fn from_flat(id: u64, start: u64, cells: &'a [CellId]) -> Self {
        debug_assert!(!cells.is_empty(), "streams are never empty");
        SnapshotStream {
            id,
            start,
            head: *cells.last().expect("non-empty"),
            len: cells.len() as u32,
            repr: StreamRepr::Flat(cells),
        }
    }
}

impl<'a> SnapshotStream<'a> {
    /// Stream id (stable across snapshots and into the final release).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Entering timestamp.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of cells reported so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Last timestamp (inclusive) this stream has reported for.
    pub fn end(&self) -> u64 {
        self.start + self.len as u64 - 1
    }

    /// The current (most recent) cell — an O(1) read of the head column.
    pub fn head(&self) -> CellId {
        self.head
    }

    /// The stream's cells in *reverse* chronological order (newest first):
    /// the natural zero-allocation traversal, since historical cells are a
    /// backward-linked chain in the arena (frozen streams iterate their
    /// flat slice backward, indistinguishably).
    pub fn cells_rev(&self) -> CellsRev<'a> {
        CellsRev(match self.repr {
            StreamRepr::Chain { arena, link } => {
                CellsRevInner::Chain { arena, next: Some((self.head, link)), remaining: self.len }
            }
            StreamRepr::Flat(cells) => CellsRevInner::Flat(cells.iter().rev()),
        })
    }

    /// Materialize the cells oldest-first into a reused buffer (cleared and
    /// filled here). For consumers that need forward order; costs one
    /// backward chain walk and no allocation once `out` has capacity.
    pub fn cells_into(&self, out: &mut Vec<CellId>) {
        out.clear();
        out.extend(self.cells_rev());
        out.reverse();
    }
}

/// Zero-allocation iterator over a [`SnapshotStream`]'s cells, newest
/// first. Created by [`SnapshotStream::cells_rev`].
#[derive(Debug, Clone)]
pub struct CellsRev<'a>(CellsRevInner<'a>);

#[derive(Debug, Clone)]
enum CellsRevInner<'a> {
    Chain {
        arena: &'a TailArena,
        /// The next cell to yield and the arena link *behind* it.
        next: Option<(CellId, Addr)>,
        remaining: u32,
    },
    Flat(std::iter::Rev<std::slice::Iter<'a, CellId>>),
}

impl Iterator for CellsRev<'_> {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        match &mut self.0 {
            CellsRevInner::Chain { arena, next, remaining } => {
                let (cell, link) = (*next)?;
                *remaining -= 1;
                *next = if *remaining == 0 {
                    debug_assert_eq!(link, NO_LINK, "chain length disagrees with len column");
                    None
                } else {
                    let node = arena.get(link);
                    Some((node.cell, node.prev))
                };
                Some(cell)
            }
            CellsRevInner::Flat(iter) => iter.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            CellsRevInner::Chain { remaining, .. } => {
                (*remaining as usize, Some(*remaining as usize))
            }
            CellsRevInner::Flat(iter) => iter.size_hint(),
        }
    }
}

impl ExactSizeIterator for CellsRev<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::Grid;

    #[test]
    fn arena_chunks_do_not_move_nodes() {
        let mut arena = TailArena::default();
        // Cross several chunk boundaries through both push and bulk paths.
        for i in 0..CHUNK_LEN + 10 {
            let addr = arena.push(TailNode { cell: CellId((i % 7) as u32), prev: i as Addr });
            assert_eq!(addr, i as Addr);
        }
        let batch: Vec<TailNode> =
            (0..CHUNK_LEN + 5).map(|i| TailNode { cell: CellId(3), prev: i as Addr }).collect();
        let base = arena.len();
        arena.extend_from_slice(&batch);
        assert_eq!(arena.len(), base + batch.len());
        for (i, node) in batch.iter().enumerate() {
            assert_eq!(arena.get((base + i) as Addr).prev, node.prev);
        }
        // Early nodes are untouched by growth.
        assert_eq!(arena.get(5).prev, 5);
    }

    #[test]
    fn arena_clear_reuses_chunks() {
        let mut arena = TailArena::default();
        for i in 0..2 * CHUNK_LEN + 3 {
            arena.push(TailNode { cell: CellId(1), prev: i as Addr });
        }
        let chunks = arena.chunk_count();
        assert_eq!(chunks, 3);
        arena.clear();
        assert_eq!(arena.len(), 0);
        // Refill past the old length: the retained chunks are reused in
        // place and only genuinely new growth allocates.
        for i in 0..2 * CHUNK_LEN + 7 {
            let addr = arena.push(TailNode { cell: CellId(2), prev: i as Addr });
            assert_eq!(addr, i as Addr);
        }
        assert_eq!(arena.chunk_count(), chunks);
        assert_eq!(arena.get(CHUNK_LEN as Addr).prev, CHUNK_LEN as Addr);
        assert_eq!(arena.get(0).cell, CellId(2));
    }

    #[test]
    fn store_extends_retires_and_releases() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(1, 0, grid.cell_at(0, 0));
        store.spawn(0, 0, grid.cell_at(3, 3));
        // Extend stream row 0 twice, row 1 once.
        let StreamStore { live, tail, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), tail);
        live.extend_row(1, grid.cell_at(2, 3), tail);
        live.extend_row(0, grid.cell_at(1, 1), tail);
        // Retire row 0 (id 1) — O(1), row 1 swaps into its slot.
        let StreamStore { live, finished, .. } = &mut store;
        live.swap_remove_into(0, finished);
        assert_eq!(store.live.len(), 1);
        assert_eq!(store.finished.len(), 1);
        let ds = store.into_dataset(grid.clone(), 3);
        // Sorted by id regardless of retirement order.
        assert_eq!(ds.stream(0).id, 0);
        assert_eq!(ds.stream(0).cells, &[grid.cell_at(3, 3), grid.cell_at(2, 3)]);
        assert_eq!(ds.stream(1).id, 1);
        assert_eq!(
            ds.stream(1).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]
        );
    }

    #[test]
    fn snapshot_views_live_and_finished_without_copying() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(1, 0, grid.cell_at(0, 0));
        store.spawn(0, 1, grid.cell_at(3, 3));
        let StreamStore { live, tail, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), tail);
        live.extend_row(1, grid.cell_at(2, 3), tail);
        live.extend_row(0, grid.cell_at(1, 1), tail);
        let StreamStore { live, finished, .. } = &mut store;
        live.swap_remove_into(0, finished);

        let snap = store.snapshot(3);
        assert_eq!(snap.horizon(), 3);
        assert_eq!(snap.active_count(), 1);
        assert_eq!(snap.finished_count(), 1);
        assert_eq!(snap.num_streams(), 2);
        assert!(!snap.is_empty());

        // Finished region first: stream 1 with its full chain.
        let streams: Vec<_> = snap.streams().collect();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].id(), 1);
        assert_eq!(streams[0].start(), 0);
        assert_eq!(streams[0].len(), 3);
        assert_eq!(streams[0].end(), 2);
        assert_eq!(streams[0].head(), grid.cell_at(1, 1));
        let rev: Vec<CellId> = streams[0].cells_rev().collect();
        assert_eq!(rev, vec![grid.cell_at(1, 1), grid.cell_at(1, 0), grid.cell_at(0, 0)]);
        let mut fwd = Vec::new();
        streams[0].cells_into(&mut fwd);
        assert_eq!(fwd, vec![grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]);

        // Live stream 0.
        assert_eq!(streams[1].id(), 0);
        assert_eq!(streams[1].start(), 1);
        streams[1].cells_into(&mut fwd);
        assert_eq!(fwd, vec![grid.cell_at(3, 3), grid.cell_at(2, 3)]);
        assert_eq!(snap.live().len(), 1);
        assert_eq!(snap.live().next().unwrap().id(), 0);

        // Live-only occupancy through a reused buffer.
        let mut counts = vec![99u64; 1];
        snap.occupancy_into(grid.num_cells(), &mut counts);
        assert_eq!(counts.iter().sum::<u64>(), 1);
        assert_eq!(counts[grid.cell_at(2, 3).index()], 1);
        assert_eq!(snap.occupancy(grid.num_cells()), counts);

        // The view is read-only: releasing afterwards still works and
        // matches what the snapshot showed.
        let ds = store.into_dataset(grid.clone(), 3);
        assert_eq!(
            ds.stream(1).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]
        );
    }

    #[test]
    fn cells_rev_is_exact_size() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(7, 2, grid.cell_at(0, 0));
        let snap = store.snapshot(3);
        let s = snap.streams().next().unwrap();
        let mut it = s.cells_rev();
        assert_eq!(it.len(), 1);
        assert_eq!(it.next(), Some(grid.cell_at(0, 0)));
        assert_eq!(it.len(), 0);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn local_sink_addresses_relocate() {
        // Worker-style: append into a local buffer, then relocate into the
        // arena at a base offset — links stay consistent.
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(0, 0, grid.cell_at(0, 0));
        let mut local: Vec<TailNode> = Vec::new();
        let StreamStore { live, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), &mut local);
        live.extend_row(0, grid.cell_at(2, 0), &mut local);
        assert_eq!(store.live.links[0], 1); // shard-local address
        let base = store.tail.len() as Addr;
        // Local `prev` pointers inside the batch must be rebased too; the
        // merge path only offsets links of rows extended this pass, so the
        // batch itself is rebased by the caller before relocation.
        for node in &mut local {
            if node.prev != NO_LINK {
                node.prev += base;
            }
        }
        store.tail.extend_from_slice(&local);
        store.live.links[0] += base;
        let ds = store.into_dataset(grid.clone(), 3);
        assert_eq!(
            ds.stream(0).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(2, 0)]
        );
    }
}
