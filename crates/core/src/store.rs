//! Columnar trajectory storage for the synthesis hot path (§III-D at
//! millions-of-users scale).
//!
//! The Vec-of-structs layout this replaces (`OpenStream { cells: Vec }`)
//! paid one heap pointer chase per live stream per timestamp in the fused
//! quit+extend pass, and `finish()` copied every stream into a fresh
//! per-stream `Vec` before metrics could run. The `StreamStore` keeps the
//! per-step state in structure-of-arrays form instead:
//!
//! - **Head columns** (`Columns`): the fields the fused pass actually
//!   touches — current cell (`heads`), `lens`, plus `ids`/`starts`/`links`
//!   bookkeeping — live in parallel vectors, so advancing `n` streams reads
//!   and writes contiguous memory.
//! - **Tail arena** (`TailArena`): historical cells are append-only
//!   `TailNode`s in fixed-size chunks, each linking backward to the
//!   stream's previous node. Extending a stream appends one node
//!   (sequential writes within a step) and never moves old cells; chunks
//!   mean growth never reallocates or copies the arena.
//! - **Finished region**: retiring a stream moves its five column entries
//!   into a second `Columns` — O(1), cells stay where they are in the
//!   arena.
//!
//! Release (`StreamStore::into_dataset`) walks each chain once, backward,
//! into a single flat cell column sorted by stream id and hands the result
//! to [`GriddedDataset::from_columns`] — no per-stream `Vec` is ever
//! allocated on the release path.
//!
//! Sharded synthesis copies disjoint index ranges of the head columns into
//! per-worker `Columns` (a handful of `memcpy`s, not a per-stream
//! shuffle); workers append tail nodes into private buffers with
//! shard-local addresses, and the merge relocates each buffer to the end of
//! the shared arena in shard order, offsetting the survivors' links — which
//! keeps the fixed-`(seed, threads)` output bit-identical to the sequential
//! ordering semantics.
//!
//! **Read-only view layer.** The streaming session API observes the store
//! *between* steps through a [`SnapshotView`]: a borrowed, zero-copy
//! per-timestamp view over the live head columns plus the finished region.
//! Iterating a snapshot yields [`SnapshotStream`]s whose cells are read
//! straight out of the arena chains — no per-stream `Vec` is ever
//! materialized, so publishing the synthetic database at every timestamp
//! (the paper's defining property, §III-D) costs nothing beyond what the
//! consumer actually reads.

use retrasyn_geo::{CellId, Grid, GriddedDataset};

/// Sentinel link for a stream with no tail (length 1).
pub(crate) const NO_LINK: u32 = u32::MAX;

const CHUNK_BITS: u32 = 16;
const CHUNK_LEN: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_LEN - 1;

/// One arena entry: the cell a stream occupied before its most recent
/// extension, linking backward to the node before that (`NO_LINK` at the
/// stream's first cell).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TailNode {
    pub(crate) cell: CellId,
    pub(crate) prev: u32,
}

/// Chunked append-only arena of `TailNode`s. Addresses are dense `u32`
/// indices; fixed-size chunks keep them stable and make growth O(1) —
/// no reallocation ever copies existing nodes.
#[derive(Debug, Clone, Default)]
pub(crate) struct TailArena {
    chunks: Vec<Vec<TailNode>>,
    len: usize,
}

impl TailArena {
    /// Number of nodes stored.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Node at `addr`.
    #[inline]
    pub(crate) fn get(&self, addr: u32) -> TailNode {
        self.chunks[addr as usize >> CHUNK_BITS][addr as usize & CHUNK_MASK]
    }

    /// Start a new chunk. The exhaustion check lives here — once per
    /// `CHUNK_LEN` appends, not on the hot path — and is a hard `assert`:
    /// past it, `len as u32` would wrap (and `NO_LINK` would collide with
    /// a real address), silently cross-linking chains in release builds.
    /// Capping at the last whole chunk below `NO_LINK` keeps every address
    /// the new chunk can hand out strictly below the sentinel.
    fn grow(&mut self) {
        assert!(
            self.len + CHUNK_LEN <= NO_LINK as usize,
            "tail arena address space exhausted ({} nodes)",
            self.len
        );
        self.chunks.push(Vec::with_capacity(CHUNK_LEN));
    }

    /// Append one node, returning its address.
    #[inline]
    pub(crate) fn push(&mut self, node: TailNode) -> u32 {
        if self.len & CHUNK_MASK == 0 {
            self.grow();
        }
        let addr = self.len as u32;
        self.chunks.last_mut().expect("chunk pushed above").push(node);
        self.len += 1;
        addr
    }

    /// Bulk-append `nodes` (chunk-wise copies), preserving order.
    pub(crate) fn extend_from_slice(&mut self, nodes: &[TailNode]) {
        let mut rest = nodes;
        while !rest.is_empty() {
            if self.len & CHUNK_MASK == 0 {
                self.grow();
            }
            let room = CHUNK_LEN - (self.len & CHUNK_MASK);
            let take = room.min(rest.len());
            self.chunks.last_mut().expect("chunk ensured above").extend_from_slice(&rest[..take]);
            self.len += take;
            rest = &rest[take..];
        }
    }
}

/// Where a pass appends tail nodes: the shared arena directly (sequential
/// paths — addresses are global immediately) or a per-shard buffer (pool
/// workers — addresses are shard-local until the merge relocates the
/// buffer and offsets the links).
pub(crate) trait TailSink {
    /// Append one node, returning its address in this sink's space.
    fn append_node(&mut self, node: TailNode) -> u32;
}

impl TailSink for TailArena {
    #[inline]
    fn append_node(&mut self, node: TailNode) -> u32 {
        self.push(node)
    }
}

impl TailSink for Vec<TailNode> {
    #[inline]
    fn append_node(&mut self, node: TailNode) -> u32 {
        let addr = self.len() as u32;
        self.push(node);
        addr
    }
}

/// Structure-of-arrays stream state: five parallel columns, one row per
/// stream. The fused quit+extend pass touches `heads`/`lens`/`links`;
/// `ids`/`starts` ride along for retirement and release.
#[derive(Debug, Clone, Default)]
pub(crate) struct Columns {
    /// Current (most recent) cell per stream — the hot column.
    pub(crate) heads: Vec<CellId>,
    /// Stream ids.
    pub(crate) ids: Vec<u64>,
    /// Entering timestamps.
    pub(crate) starts: Vec<u64>,
    /// Cells reported so far (chain length + 1).
    pub(crate) lens: Vec<u32>,
    /// Arena address of the previous cell's node (`NO_LINK` if length 1).
    pub(crate) links: Vec<u32>,
}

impl Columns {
    /// Number of rows.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether there are no rows.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Drop all rows, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.heads.clear();
        self.ids.clear();
        self.starts.clear();
        self.lens.clear();
        self.links.clear();
    }

    /// Append one row.
    #[inline]
    pub(crate) fn push(&mut self, id: u64, start: u64, head: CellId, len: u32, link: u32) {
        self.heads.push(head);
        self.ids.push(id);
        self.starts.push(start);
        self.lens.push(len);
        self.links.push(link);
    }

    /// `swap_remove` row `i` into `out` — O(1) retirement; the stream's
    /// cells never move.
    #[inline]
    pub(crate) fn swap_remove_into(&mut self, i: usize, out: &mut Columns) {
        out.heads.push(self.heads.swap_remove(i));
        out.ids.push(self.ids.swap_remove(i));
        out.starts.push(self.starts.swap_remove(i));
        out.lens.push(self.lens.swap_remove(i));
        out.links.push(self.links.swap_remove(i));
    }

    /// Extend stream `i` by one cell: its old head becomes a tail node in
    /// `sink`, the new cell takes the head slot.
    #[inline]
    pub(crate) fn extend_row<S: TailSink>(&mut self, i: usize, to: CellId, sink: &mut S) {
        let link = sink.append_node(TailNode { cell: self.heads[i], prev: self.links[i] });
        self.heads[i] = to;
        self.links[i] = link;
        self.lens[i] += 1;
    }

    /// Append rows `lo..hi` of `src` (five contiguous copies — the
    /// shard-out path).
    pub(crate) fn extend_from_range(&mut self, src: &Columns, lo: usize, hi: usize) {
        self.heads.extend_from_slice(&src.heads[lo..hi]);
        self.ids.extend_from_slice(&src.ids[lo..hi]);
        self.starts.extend_from_slice(&src.starts[lo..hi]);
        self.lens.extend_from_slice(&src.lens[lo..hi]);
        self.links.extend_from_slice(&src.links[lo..hi]);
    }

    /// Drain every row of `other` onto the end of `self`, preserving order
    /// and `other`'s capacity.
    pub(crate) fn append(&mut self, other: &mut Columns) {
        self.heads.append(&mut other.heads);
        self.ids.append(&mut other.ids);
        self.starts.append(&mut other.starts);
        self.lens.append(&mut other.lens);
        self.links.append(&mut other.links);
    }
}

/// The synthesizer's columnar stream storage: live head columns, the shared
/// chunked tail arena, and the finished region retirement moves rows into.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamStore {
    /// Live streams (SoA).
    pub(crate) live: Columns,
    /// Retired streams (SoA; cells remain in the arena).
    pub(crate) finished: Columns,
    /// Historical cells of every stream, live or finished.
    pub(crate) tail: TailArena,
}

impl StreamStore {
    /// Append a fresh length-1 live stream.
    #[inline]
    pub(crate) fn spawn(&mut self, id: u64, start: u64, cell: CellId) {
        self.live.push(id, start, cell, 1, NO_LINK);
    }

    /// Borrow the store as a read-only per-timestamp view covering
    /// `0..horizon`.
    pub(crate) fn snapshot(&self, horizon: u64) -> SnapshotView<'_> {
        SnapshotView { store: self, horizon }
    }

    /// Materialize the cells of a stream described by `(head, len, link)`
    /// into `out`, oldest first, by walking its chain backward.
    fn write_cells(&self, head: CellId, len: usize, link: u32, out: &mut [CellId]) {
        debug_assert_eq!(out.len(), len);
        out[len - 1] = head;
        let mut addr = link;
        for slot in out[..len - 1].iter_mut().rev() {
            let node = self.tail.get(addr);
            *slot = node.cell;
            addr = node.prev;
        }
        debug_assert_eq!(addr, NO_LINK, "chain length disagrees with len column");
    }

    /// Close every live stream (in live order, matching the sequential
    /// retirement semantics) and release the whole store as an id-sorted
    /// columnar [`GriddedDataset`]: one flat cell column, no per-stream
    /// allocation.
    pub(crate) fn into_dataset(mut self, grid: Grid, horizon: u64) -> GriddedDataset {
        {
            let StreamStore { live, finished, .. } = &mut self;
            finished.append(live);
        }
        let n = self.finished.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| self.finished.ids[i as usize]);
        let total: usize = self.finished.lens.iter().map(|&l| l as usize).sum();
        let mut ids = Vec::with_capacity(n);
        let mut starts = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cells = vec![CellId(0); total];
        offsets.push(0usize);
        let mut pos = 0usize;
        for &oi in &order {
            let i = oi as usize;
            ids.push(self.finished.ids[i]);
            starts.push(self.finished.starts[i]);
            let len = self.finished.lens[i] as usize;
            self.write_cells(
                self.finished.heads[i],
                len,
                self.finished.links[i],
                &mut cells[pos..pos + len],
            );
            pos += len;
            offsets.push(pos);
        }
        GriddedDataset::from_columns(grid, ids, starts, offsets, cells, horizon)
    }
}

/// A borrowed, zero-copy view of the synthetic database at one timestamp —
/// what a streaming consumer observes *between* engine steps (the paper's
/// per-timestamp release, §III-D; reading it is post-processing and costs
/// no additional privacy budget).
///
/// The view borrows the store's live head columns and finished region
/// directly: constructing it allocates nothing, and iterating it yields
/// [`SnapshotStream`]s whose cells are read straight out of the tail-arena
/// chains. A snapshot taken after step `t` is bit-for-bit the length-`t+1`
/// prefix of the final release: every stream it contains reappears in the
/// released [`GriddedDataset`] with the snapshot's cells as a prefix.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    store: &'a StreamStore,
    horizon: u64,
}

impl<'a> SnapshotView<'a> {
    /// Number of timestamps this snapshot covers (`0..horizon`): the number
    /// of engine steps completed when it was taken.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of live synthetic streams.
    pub fn active_count(&self) -> usize {
        self.store.live.len()
    }

    /// Number of synthetic streams already terminated.
    pub fn finished_count(&self) -> usize {
        self.store.finished.len()
    }

    /// Total number of streams (live + finished).
    pub fn num_streams(&self) -> usize {
        self.store.live.len() + self.store.finished.len()
    }

    /// Whether the snapshot holds no streams.
    pub fn is_empty(&self) -> bool {
        self.num_streams() == 0
    }

    /// Borrowed iteration over every stream: the finished region first,
    /// then the live population. Order within each region is the store's
    /// internal (retirement / spawn-and-swap) order, not id order — map by
    /// [`SnapshotStream::id`] to correlate snapshots across timestamps.
    pub fn streams(&self) -> impl ExactSizeIterator<Item = SnapshotStream<'a>> + Clone + '_ {
        let store = self.store;
        let finished = store.finished.len();
        (0..self.num_streams()).map(move |i| {
            let (cols, row) =
                if i < finished { (&store.finished, i) } else { (&store.live, i - finished) };
            SnapshotStream {
                arena: &store.tail,
                id: cols.ids[row],
                start: cols.starts[row],
                head: cols.heads[row],
                len: cols.lens[row],
                link: cols.links[row],
            }
        })
    }

    /// Borrowed iteration over the live streams only (the population a
    /// real-time monitor watches).
    pub fn live(&self) -> impl ExactSizeIterator<Item = SnapshotStream<'a>> + Clone + '_ {
        let store = self.store;
        (0..store.live.len()).map(move |row| SnapshotStream {
            arena: &store.tail,
            id: store.live.ids[row],
            start: store.live.starts[row],
            head: store.live.heads[row],
            len: store.live.lens[row],
            link: store.live.links[row],
        })
    }

    /// Per-cell occupancy of the live population into a reused buffer
    /// (resized and zeroed here): one contiguous scan of the head column,
    /// no allocation after warm-up.
    pub fn occupancy_into(&self, num_cells: usize, counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(num_cells, 0);
        for head in &self.store.live.heads {
            counts[head.index()] += 1;
        }
    }

    /// Per-cell occupancy of the live population (allocating convenience
    /// wrapper over [`Self::occupancy_into`]).
    pub fn occupancy(&self, num_cells: usize) -> Vec<u64> {
        let mut counts = Vec::new();
        self.occupancy_into(num_cells, &mut counts);
        counts
    }
}

/// One synthetic stream inside a [`SnapshotView`]: five copied scalars plus
/// a borrow of the tail arena — `Copy`, allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStream<'a> {
    arena: &'a TailArena,
    id: u64,
    start: u64,
    head: CellId,
    len: u32,
    link: u32,
}

impl<'a> SnapshotStream<'a> {
    /// Stream id (stable across snapshots and into the final release).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Entering timestamp.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of cells reported so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Last timestamp (inclusive) this stream has reported for.
    pub fn end(&self) -> u64 {
        self.start + self.len as u64 - 1
    }

    /// The current (most recent) cell — an O(1) read of the head column.
    pub fn head(&self) -> CellId {
        self.head
    }

    /// The stream's cells in *reverse* chronological order (newest first):
    /// the natural zero-allocation traversal, since historical cells are a
    /// backward-linked chain in the arena.
    pub fn cells_rev(&self) -> CellsRev<'a> {
        CellsRev { arena: self.arena, next: Some((self.head, self.link)), remaining: self.len }
    }

    /// Materialize the cells oldest-first into a reused buffer (cleared and
    /// filled here). For consumers that need forward order; costs one
    /// backward chain walk and no allocation once `out` has capacity.
    pub fn cells_into(&self, out: &mut Vec<CellId>) {
        out.clear();
        out.extend(self.cells_rev());
        out.reverse();
    }
}

/// Zero-allocation iterator over a [`SnapshotStream`]'s cells, newest
/// first. Created by [`SnapshotStream::cells_rev`].
#[derive(Debug, Clone)]
pub struct CellsRev<'a> {
    arena: &'a TailArena,
    /// The next cell to yield and the arena link *behind* it.
    next: Option<(CellId, u32)>,
    remaining: u32,
}

impl Iterator for CellsRev<'_> {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        let (cell, link) = self.next?;
        self.remaining -= 1;
        self.next = if self.remaining == 0 {
            debug_assert_eq!(link, NO_LINK, "chain length disagrees with len column");
            None
        } else {
            let node = self.arena.get(link);
            Some((node.cell, node.prev))
        };
        Some(cell)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for CellsRev<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_chunks_do_not_move_nodes() {
        let mut arena = TailArena::default();
        // Cross several chunk boundaries through both push and bulk paths.
        for i in 0..(CHUNK_LEN + 10) as u32 {
            let addr = arena.push(TailNode { cell: CellId((i % 7) as u16), prev: i });
            assert_eq!(addr, i);
        }
        let batch: Vec<TailNode> =
            (0..CHUNK_LEN + 5).map(|i| TailNode { cell: CellId(3), prev: i as u32 }).collect();
        let base = arena.len();
        arena.extend_from_slice(&batch);
        assert_eq!(arena.len(), base + batch.len());
        for (i, node) in batch.iter().enumerate() {
            assert_eq!(arena.get((base + i) as u32).prev, node.prev);
        }
        // Early nodes are untouched by growth.
        assert_eq!(arena.get(5).prev, 5);
    }

    #[test]
    fn store_extends_retires_and_releases() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(1, 0, grid.cell_at(0, 0));
        store.spawn(0, 0, grid.cell_at(3, 3));
        // Extend stream row 0 twice, row 1 once.
        let StreamStore { live, tail, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), tail);
        live.extend_row(1, grid.cell_at(2, 3), tail);
        live.extend_row(0, grid.cell_at(1, 1), tail);
        // Retire row 0 (id 1) — O(1), row 1 swaps into its slot.
        let StreamStore { live, finished, .. } = &mut store;
        live.swap_remove_into(0, finished);
        assert_eq!(store.live.len(), 1);
        assert_eq!(store.finished.len(), 1);
        let ds = store.into_dataset(grid.clone(), 3);
        // Sorted by id regardless of retirement order.
        assert_eq!(ds.stream(0).id, 0);
        assert_eq!(ds.stream(0).cells, &[grid.cell_at(3, 3), grid.cell_at(2, 3)]);
        assert_eq!(ds.stream(1).id, 1);
        assert_eq!(
            ds.stream(1).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]
        );
    }

    #[test]
    fn snapshot_views_live_and_finished_without_copying() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(1, 0, grid.cell_at(0, 0));
        store.spawn(0, 1, grid.cell_at(3, 3));
        let StreamStore { live, tail, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), tail);
        live.extend_row(1, grid.cell_at(2, 3), tail);
        live.extend_row(0, grid.cell_at(1, 1), tail);
        let StreamStore { live, finished, .. } = &mut store;
        live.swap_remove_into(0, finished);

        let snap = store.snapshot(3);
        assert_eq!(snap.horizon(), 3);
        assert_eq!(snap.active_count(), 1);
        assert_eq!(snap.finished_count(), 1);
        assert_eq!(snap.num_streams(), 2);
        assert!(!snap.is_empty());

        // Finished region first: stream 1 with its full chain.
        let streams: Vec<_> = snap.streams().collect();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].id(), 1);
        assert_eq!(streams[0].start(), 0);
        assert_eq!(streams[0].len(), 3);
        assert_eq!(streams[0].end(), 2);
        assert_eq!(streams[0].head(), grid.cell_at(1, 1));
        let rev: Vec<CellId> = streams[0].cells_rev().collect();
        assert_eq!(rev, vec![grid.cell_at(1, 1), grid.cell_at(1, 0), grid.cell_at(0, 0)]);
        let mut fwd = Vec::new();
        streams[0].cells_into(&mut fwd);
        assert_eq!(fwd, vec![grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]);

        // Live stream 0.
        assert_eq!(streams[1].id(), 0);
        assert_eq!(streams[1].start(), 1);
        streams[1].cells_into(&mut fwd);
        assert_eq!(fwd, vec![grid.cell_at(3, 3), grid.cell_at(2, 3)]);
        assert_eq!(snap.live().len(), 1);
        assert_eq!(snap.live().next().unwrap().id(), 0);

        // Live-only occupancy through a reused buffer.
        let mut counts = vec![99u64; 1];
        snap.occupancy_into(grid.num_cells(), &mut counts);
        assert_eq!(counts.iter().sum::<u64>(), 1);
        assert_eq!(counts[grid.cell_at(2, 3).index()], 1);
        assert_eq!(snap.occupancy(grid.num_cells()), counts);

        // The view is read-only: releasing afterwards still works and
        // matches what the snapshot showed.
        let ds = store.into_dataset(grid.clone(), 3);
        assert_eq!(
            ds.stream(1).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)]
        );
    }

    #[test]
    fn cells_rev_is_exact_size() {
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(7, 2, grid.cell_at(0, 0));
        let snap = store.snapshot(3);
        let s = snap.streams().next().unwrap();
        let mut it = s.cells_rev();
        assert_eq!(it.len(), 1);
        assert_eq!(it.next(), Some(grid.cell_at(0, 0)));
        assert_eq!(it.len(), 0);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn local_sink_addresses_relocate() {
        // Worker-style: append into a local buffer, then relocate into the
        // arena at a base offset — links stay consistent.
        let grid = Grid::unit(4);
        let mut store = StreamStore::default();
        store.spawn(0, 0, grid.cell_at(0, 0));
        let mut local: Vec<TailNode> = Vec::new();
        let StreamStore { live, .. } = &mut store;
        live.extend_row(0, grid.cell_at(1, 0), &mut local);
        live.extend_row(0, grid.cell_at(2, 0), &mut local);
        assert_eq!(store.live.links[0], 1); // shard-local address
        let base = store.tail.len() as u32;
        // Local `prev` pointers inside the batch must be rebased too; the
        // merge path only offsets links of rows extended this pass, so the
        // batch itself is rebased by the caller before relocation.
        for node in &mut local {
            if node.prev != NO_LINK {
                node.prev += base;
            }
        }
        store.tail.extend_from_slice(&local);
        store.live.links[0] += base;
        let ds = store.into_dataset(grid.clone(), 3);
        assert_eq!(
            ds.stream(0).cells,
            &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(2, 0)]
        );
    }
}
