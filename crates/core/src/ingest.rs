//! Ingest validation and quarantine for untrusted event streams.
//!
//! The engines in this crate trust their input: batches produced by
//! [`EventTimeline`](retrasyn_geo::EventTimeline) are reachability-
//! constrained by construction, and the WAL replay path CRC-checks and
//! re-validates every record. A *live* source — a socket, a message queue,
//! another process feeding a [`ChannelSource`](crate::session::ChannelSource)
//! — offers no such guarantee. [`ValidatedSource`] sits between any
//! [`EventSource`] and the engine and screens each batch:
//!
//! - **Domain**: every cell index must lie inside the compiled
//!   [`Topology`] ([`EventFault::OutOfDomain`]).
//! - **Adjacency**: a `Move` must connect adjacent cells
//!   ([`EventFault::NonAdjacentMove`]).
//! - **Uniqueness**: one report per user per timestamp
//!   ([`EventFault::DuplicateReporter`]).
//! - **Lifecycle**: `Move`/`Quit` only from users that entered and have
//!   not quit ([`EventFault::NotEntered`]), `Enter` only from users not
//!   currently active ([`EventFault::ReEnter`]).
//!
//! Offending events are diverted to a bounded quarantine ring (never
//! silently dropped without accounting) and tallied per fault kind in
//! [`IngestStats`]. What happens to the *rest* of a tainted batch is the
//! [`IngestPolicy`]:
//!
//! | policy | tainted batch becomes | use when |
//! |---|---|---|
//! | [`DropEvents`](IngestPolicy::DropEvents) | the valid subset | best-effort live ingest (default) |
//! | [`RejectBatch`](IngestPolicy::RejectBatch) | an empty heartbeat | a bad event discredits its whole batch |
//! | [`Strict`](IngestPolicy::Strict) | end of stream + latched error | malformed input is a bug upstream |
//!
//! The screened stream always satisfies the engines' input contract, so
//! driving an engine through a `ValidatedSource` can never hit an
//! [`InvalidEvent`](crate::session::SessionError::InvalidEvent) error —
//! and, transitively, never a validation panic.
//!
//! Determinism: screening is pure bookkeeping — it consumes no RNG and
//! mutates nothing but the adapter's own counters — so a well-formed
//! stream passes through bit-identical, and a tainted stream yields
//! exactly the batches a pre-cleaned copy of it would have.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use retrasyn_geo::{Topology, TransitionState, UserEvent};

use crate::session::{EventFault, EventSource, SessionError};

/// What [`ValidatedSource`] does with a batch containing invalid events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Quarantine the offending events and pass the valid remainder
    /// through. The default: keeps a live stream flowing on sporadic
    /// corruption.
    #[default]
    DropEvents,
    /// Quarantine the offending events and replace the *whole* batch with
    /// an empty heartbeat (the engine still steps, timestamps stay
    /// consecutive). Valid events discarded this way are counted in
    /// [`IngestStats::rejected_events`].
    RejectBatch,
    /// Treat the first invalid event as fatal: quarantine it, end the
    /// stream, and latch a [`SessionError::InvalidEvent`] retrievable via
    /// [`ValidatedSource::error`].
    Strict,
}

/// An event diverted by [`ValidatedSource`], with the timestamp of the
/// batch it arrived in and the screening rule it violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedEvent {
    /// Timestamp of the batch the event arrived in (the engine timestamp
    /// that batch was — or would have been — delivered as).
    pub t: u64,
    /// The offending event, verbatim.
    pub event: UserEvent,
    /// Which screening rule it violated.
    pub fault: EventFault,
}

/// Per-reason counters kept by [`ValidatedSource`]. All counters are
/// cumulative over the adapter's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Batches pulled from the inner source.
    pub batches: u64,
    /// Events pulled from the inner source (sum of batch lengths).
    pub events: u64,
    /// Events delivered downstream.
    pub passed: u64,
    /// Events referencing a cell outside the discretization.
    pub out_of_domain: u64,
    /// `Move` events between non-adjacent cells.
    pub non_adjacent_moves: u64,
    /// Second and later reports from one user within a single batch.
    pub duplicate_reporters: u64,
    /// `Move`/`Quit` reports from users that never entered (or already
    /// quit).
    pub not_entered: u64,
    /// `Enter` reports from users already active.
    pub re_enter: u64,
    /// Batches emptied by [`IngestPolicy::RejectBatch`].
    pub rejected_batches: u64,
    /// *Valid* events discarded as collateral of a rejected batch.
    pub rejected_events: u64,
    /// Quarantined events evicted because the ring was full.
    pub quarantine_dropped: u64,
}

impl IngestStats {
    /// Total events diverted to quarantine (sum of the per-fault
    /// counters; excludes `rejected_events`, which were valid).
    pub fn diverted(&self) -> u64 {
        self.out_of_domain
            + self.non_adjacent_moves
            + self.duplicate_reporters
            + self.not_entered
            + self.re_enter
    }
}

/// Default capacity of the quarantine ring.
const DEFAULT_QUARANTINE_CAP: usize = 1024;

/// An [`EventSource`] adapter that screens every batch of an inner source
/// against the engine input contract, diverting invalid events to a
/// bounded quarantine. See the [module docs](self) for the rules and
/// policies.
#[derive(Debug)]
pub struct ValidatedSource<S> {
    inner: S,
    topo: Arc<Topology>,
    policy: IngestPolicy,
    /// Users currently active (entered, not yet quit) in the *delivered*
    /// stream.
    entered: BTreeSet<u64>,
    /// Reporters seen so far in the current batch.
    seen: BTreeSet<u64>,
    /// The screened batch handed downstream.
    out: Vec<UserEvent>,
    quarantine: VecDeque<QuarantinedEvent>,
    quarantine_cap: usize,
    stats: IngestStats,
    /// Timestamp the next delivered batch will carry.
    t: u64,
    /// Latched fatal error under [`IngestPolicy::Strict`].
    fatal: Option<SessionError>,
}

impl<S: EventSource> ValidatedSource<S> {
    /// Wrap `inner`, screening against the discretization `topo` under
    /// `policy`.
    pub fn new(inner: S, topo: Arc<Topology>, policy: IngestPolicy) -> Self {
        ValidatedSource {
            inner,
            topo,
            policy,
            entered: BTreeSet::new(),
            seen: BTreeSet::new(),
            out: Vec::new(),
            quarantine: VecDeque::new(),
            quarantine_cap: DEFAULT_QUARANTINE_CAP,
            stats: IngestStats::default(),
            t: 0,
            fatal: None,
        }
    }

    /// Cap the quarantine ring at `cap` events (oldest evicted first,
    /// counted in [`IngestStats::quarantine_dropped`]). `cap = 0` keeps
    /// counters only.
    pub fn with_quarantine_capacity(mut self, cap: usize) -> Self {
        self.quarantine_cap = cap;
        while self.quarantine.len() > cap {
            self.quarantine.pop_front();
            self.stats.quarantine_dropped += 1;
        }
        self
    }

    /// Cumulative screening counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The quarantined events currently retained (oldest first).
    pub fn quarantine(&self) -> impl Iterator<Item = &QuarantinedEvent> {
        self.quarantine.iter()
    }

    /// Drain the quarantine ring, oldest first.
    pub fn drain_quarantine(&mut self) -> Vec<QuarantinedEvent> {
        self.quarantine.drain(..).collect()
    }

    /// The fatal error latched under [`IngestPolicy::Strict`], if the
    /// stream ended on one.
    pub fn error(&self) -> Option<&SessionError> {
        self.fatal.as_ref()
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the screening state.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn count_fault(&mut self, fault: EventFault) {
        match fault {
            EventFault::OutOfDomain => self.stats.out_of_domain += 1,
            EventFault::NonAdjacentMove => self.stats.non_adjacent_moves += 1,
            EventFault::DuplicateReporter => self.stats.duplicate_reporters += 1,
            EventFault::NotEntered => self.stats.not_entered += 1,
            EventFault::ReEnter => self.stats.re_enter += 1,
        }
    }

    fn push_quarantine(&mut self, t: u64, event: UserEvent, fault: EventFault) {
        self.count_fault(fault);
        if self.quarantine_cap == 0 {
            self.stats.quarantine_dropped += 1;
            return;
        }
        if self.quarantine.len() >= self.quarantine_cap {
            self.quarantine.pop_front();
            self.stats.quarantine_dropped += 1;
        }
        self.quarantine.push_back(QuarantinedEvent { t, event, fault });
    }
}

impl<S: EventSource> EventSource for ValidatedSource<S> {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        if self.fatal.is_some() {
            return None;
        }
        let t = self.t;

        // Screen the incoming batch into `out`, recording faults and the
        // lifecycle transitions the valid events would apply. Nothing is
        // committed until the policy decides the batch's fate.
        self.out.clear();
        self.seen.clear();
        let mut faults: Vec<(UserEvent, EventFault)> = Vec::new();
        {
            let batch = self.inner.next_batch()?;
            self.stats.batches += 1;
            self.stats.events += batch.len() as u64;
            for &event in batch {
                match classify(&self.topo, &self.seen, &self.entered, &event) {
                    Some(fault) => faults.push((event, fault)),
                    None => {
                        self.seen.insert(event.user);
                        self.out.push(event);
                    }
                }
            }
        }

        let tainted = !faults.is_empty();
        if tainted && self.policy == IngestPolicy::Strict {
            let (event, fault) = faults[0];
            self.fatal = Some(SessionError::InvalidEvent { t, user: event.user, fault });
            for (event, fault) in faults {
                self.push_quarantine(t, event, fault);
            }
            return None;
        }
        if tainted && self.policy == IngestPolicy::RejectBatch {
            self.stats.rejected_batches += 1;
            self.stats.rejected_events += self.out.len() as u64;
            self.out.clear();
        }
        for (event, fault) in faults {
            self.push_quarantine(t, event, fault);
        }
        // Commit the lifecycle transitions of the events actually
        // delivered (an emptied batch commits none).
        for event in &self.out {
            match event.state {
                TransitionState::Enter(_) => {
                    self.entered.insert(event.user);
                }
                TransitionState::Quit(_) => {
                    self.entered.remove(&event.user);
                }
                TransitionState::Move { .. } => {}
            }
        }
        self.stats.passed += self.out.len() as u64;
        self.t += 1;
        Some(&self.out)
    }
}

/// Classify `event` against domain, adjacency, per-batch uniqueness and
/// lifecycle, in that order. A free function over the screening state so
/// it can run while the inner source's batch borrow is alive.
fn classify(
    topo: &Topology,
    seen: &BTreeSet<u64>,
    entered: &BTreeSet<u64>,
    event: &UserEvent,
) -> Option<EventFault> {
    let cells = topo.num_cells();
    match event.state {
        TransitionState::Move { from, to } => {
            if from.index() >= cells || to.index() >= cells {
                return Some(EventFault::OutOfDomain);
            }
            if !topo.are_adjacent(from, to) {
                return Some(EventFault::NonAdjacentMove);
            }
        }
        TransitionState::Enter(c) | TransitionState::Quit(c) => {
            if c.index() >= cells {
                return Some(EventFault::OutOfDomain);
            }
        }
    }
    if seen.contains(&event.user) {
        return Some(EventFault::DuplicateReporter);
    }
    match event.state {
        TransitionState::Enter(_) if entered.contains(&event.user) => Some(EventFault::ReEnter),
        TransitionState::Move { .. } | TransitionState::Quit(_)
            if !entered.contains(&event.user) =>
        {
            Some(EventFault::NotEntered)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::IterSource;
    use retrasyn_geo::{BoundingBox, CellId, Space, UniformGrid};

    fn topo() -> Arc<Topology> {
        UniformGrid::new(4, BoundingBox::unit()).compile_shared()
    }

    fn enter(user: u64, cell: u32) -> UserEvent {
        UserEvent { user, state: TransitionState::Enter(CellId(cell)) }
    }

    #[test]
    fn clean_stream_passes_through_unchanged() {
        let topo = topo();
        let batches = vec![
            vec![enter(1, 0), enter(2, 5)],
            vec![UserEvent { user: 1, state: TransitionState::Quit(CellId(0)) }],
        ];
        let expect = batches.clone();
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::DropEvents,
        );
        assert_eq!(src.next_batch().unwrap(), expect[0].as_slice());
        assert_eq!(src.next_batch().unwrap(), expect[1].as_slice());
        assert!(src.next_batch().is_none());
        let stats = src.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.passed, 3);
        assert_eq!(stats.diverted(), 0);
    }

    #[test]
    fn lifecycle_faults_are_classified() {
        let topo = topo();
        let batches = vec![
            // user 7 never entered; user 1 enters twice in later batch.
            vec![
                enter(1, 0),
                UserEvent {
                    user: 7,
                    state: TransitionState::Move { from: CellId(0), to: CellId(1) },
                },
            ],
            vec![enter(1, 2)],
        ];
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::DropEvents,
        );
        assert_eq!(src.next_batch().unwrap().len(), 1);
        assert_eq!(src.next_batch().unwrap().len(), 0);
        assert!(src.next_batch().is_none());
        let stats = *src.stats();
        assert_eq!(stats.not_entered, 1);
        assert_eq!(stats.re_enter, 1);
        assert_eq!(stats.passed, 1);
        let q = src.drain_quarantine();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].t, 0);
        assert_eq!(q[0].fault, EventFault::NotEntered);
        assert_eq!(q[1].t, 1);
        assert_eq!(q[1].fault, EventFault::ReEnter);
    }

    #[test]
    fn duplicate_reporter_in_one_batch_is_diverted() {
        let topo = topo();
        let batches = vec![vec![enter(3, 0), enter(3, 1)]];
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::DropEvents,
        );
        let batch = src.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].state, TransitionState::Enter(CellId(0)));
        assert_eq!(src.stats().duplicate_reporters, 1);
    }

    #[test]
    fn reject_batch_substitutes_heartbeat_and_counts_collateral() {
        let topo = topo();
        let bad =
            UserEvent { user: 9, state: TransitionState::Move { from: CellId(0), to: CellId(15) } };
        let batches = vec![vec![enter(1, 0), bad], vec![enter(1, 0)]];
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::RejectBatch,
        );
        // Tainted batch arrives as an empty heartbeat: user 1's Enter was
        // collateral, so the *next* batch's Enter(1) is now the first.
        assert_eq!(src.next_batch().unwrap().len(), 0);
        assert_eq!(src.next_batch().unwrap().len(), 1);
        assert!(src.next_batch().is_none());
        let stats = *src.stats();
        assert_eq!(stats.rejected_batches, 1);
        assert_eq!(stats.rejected_events, 1);
        assert_eq!(stats.non_adjacent_moves, 1);
        assert_eq!(stats.passed, 1);
    }

    #[test]
    fn strict_latches_typed_error_and_ends_stream() {
        let topo = topo();
        let bad = UserEvent { user: 4, state: TransitionState::Quit(CellId(0)) };
        let batches = vec![vec![enter(1, 0)], vec![bad], vec![enter(2, 1)]];
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::Strict,
        );
        assert_eq!(src.next_batch().unwrap().len(), 1);
        assert!(src.next_batch().is_none());
        assert!(src.next_batch().is_none(), "stream stays ended after the latch");
        match src.error() {
            Some(SessionError::InvalidEvent { t: 1, user: 4, fault: EventFault::NotEntered }) => {}
            other => panic!("unexpected latched error: {other:?}"),
        }
    }

    #[test]
    fn quarantine_ring_is_bounded() {
        let topo = topo();
        let bad = |u: u64| UserEvent { user: u, state: TransitionState::Quit(CellId(0)) };
        let batches = vec![(0..8).map(bad).collect::<Vec<_>>()];
        let mut src = ValidatedSource::new(
            IterSource::new(batches.into_iter()),
            Arc::clone(&topo),
            IngestPolicy::DropEvents,
        )
        .with_quarantine_capacity(3);
        assert_eq!(src.next_batch().unwrap().len(), 0);
        let stats = *src.stats();
        assert_eq!(stats.not_entered, 8);
        assert_eq!(stats.quarantine_dropped, 5);
        let q = src.drain_quarantine();
        assert_eq!(q.len(), 3);
        assert_eq!(q[0].event.user, 5, "oldest records evicted first");
    }
}
