//! Dynamic Mobility Update — significant-transition selection (§III-C).
//!
//! At each timestamp the curator must decide, per transition state, whether
//! to overwrite the model with the freshly perturbed estimate (incurring the
//! OUE variance `Err_upd`, Eq. 3) or keep the extant value (incurring the
//! approximation bias `Err_app = |f̃ − f̂|²`, estimated with the perturbed
//! statistics since the true frequency is unavailable under LDP). The total
//! error (Eq. 7)
//!
//! ```text
//! Err = Σ_s x_s · Err_upd + Σ_s (1 − x_s) · |f̃_s − f̂_s|²
//! ```
//!
//! is separable, so the optimum selects exactly the states whose estimated
//! bias exceeds the update variance.

/// Select the significant transitions `S*`: `x_s = 1` iff
/// `(f̃_s − f̂_s)² > Err_upd`.
///
/// `current` is the extant model frequency `f̃`, `fresh` the new perturbed
/// estimate `f̂`, and `err_upd` the per-state update error (OUE variance for
/// this round's `ε_t`, `n_t`).
pub fn select_significant(current: &[f64], fresh: &[f64], err_upd: f64) -> Vec<bool> {
    let mut selected = Vec::new();
    select_significant_into(current, fresh, err_upd, &mut selected);
    selected
}

/// Allocation-free variant of [`select_significant`]: writes the selection
/// into `selected` (cleared first). The engine calls this every timestamp
/// with a reused buffer.
pub fn select_significant_into(
    current: &[f64],
    fresh: &[f64],
    err_upd: f64,
    selected: &mut Vec<bool>,
) {
    assert_eq!(current.len(), fresh.len(), "model / estimate length mismatch");
    selected.clear();
    selected.extend(current.iter().zip(fresh).map(|(&cur, &new)| (cur - new).powi(2) > err_upd));
}

/// The total introduced error of a selection (Eq. 7) — used by tests to
/// verify optimality and by the harness for diagnostics.
pub fn total_error(current: &[f64], fresh: &[f64], err_upd: f64, selected: &[bool]) -> f64 {
    assert_eq!(current.len(), fresh.len());
    assert_eq!(current.len(), selected.len());
    let mut err = 0.0;
    for i in 0..current.len() {
        if selected[i] {
            err += err_upd;
        } else {
            err += (current[i] - fresh[i]).powi(2);
        }
    }
    err
}

/// Number of selected states.
pub fn count_selected(selected: &[bool]) -> usize {
    selected.iter().filter(|&&x| x).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_large_deviations_only() {
        let current = [0.5, 0.5, 0.5, 0.5];
        let fresh = [0.5, 0.6, 0.9, 0.48];
        // err_upd = 0.02: deviations^2 are 0, 0.01, 0.16, 0.0004.
        let sel = select_significant(&current, &fresh, 0.02);
        assert_eq!(sel, vec![false, false, true, false]);
    }

    #[test]
    fn high_noise_selects_nothing() {
        // When perturbation noise dwarfs every deviation, approximating is
        // always better (the "low budget" regime of §III-C).
        let current = [0.1, 0.2, 0.3];
        let fresh = [0.2, 0.1, 0.4];
        let sel = select_significant(&current, &fresh, 10.0);
        assert_eq!(count_selected(&sel), 0);
    }

    #[test]
    fn zero_noise_selects_every_change() {
        // Infinite users / budget: publishing is free, update everything
        // that moved.
        let current = [0.1, 0.2, 0.3];
        let fresh = [0.1, 0.25, 0.29];
        let sel = select_significant(&current, &fresh, 0.0);
        assert_eq!(sel, vec![false, true, true]);
    }

    #[test]
    fn selection_minimizes_eq7() {
        // Exhaustively verify optimality on a small instance.
        let current = [0.5, 0.1, 0.9, 0.3, 0.0];
        let fresh = [0.45, 0.4, 0.2, 0.31, 0.05];
        let err_upd = 0.03;
        let best = select_significant(&current, &fresh, err_upd);
        let best_err = total_error(&current, &fresh, err_upd, &best);
        for mask in 0..32u32 {
            let candidate: Vec<bool> = (0..5).map(|i| mask >> i & 1 == 1).collect();
            let err = total_error(&current, &fresh, err_upd, &candidate);
            assert!(best_err <= err + 1e-12, "mask {mask:05b} beats DMU: {err} < {best_err}");
        }
    }

    #[test]
    fn infinite_variance_selects_nothing() {
        // n = 0 -> Var = inf -> keep the model untouched.
        let sel = select_significant(&[0.3, 0.4], &[0.9, 0.0], f64::INFINITY);
        assert_eq!(count_selected(&sel), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = select_significant(&[0.1], &[0.1, 0.2], 0.1);
    }
}
