//! The RetraSyn streaming engine (§III-F, Algorithm 1).
//!
//! One [`RetraSyn::step`] per timestamp performs:
//!
//! 1. user bookkeeping — register arrivals, recycle users that reported
//!    `w` steps ago, retire quitters (population division);
//! 2. allocation — portion `p_t` of the remaining window budget (budget
//!    division) or of the active user set (population division);
//! 3. private collection — the sampled reporters perturb their transition
//!    state with OUE;
//! 4. DMU — select significant transitions and refresh only those in the
//!    global mobility model;
//! 5. real-time synthesis — extend the synthetic database and adjust its
//!    size to the live population.
//!
//! The engine enforces w-event ε-LDP at runtime through a
//! [`WEventLedger`] and accumulates per-component wall-clock timings
//! (Table V).
//!
//! The engine is driven as a **streaming session** (see
//! [`crate::session`]): [`RetraSyn::step`] per timestamp,
//! [`RetraSyn::snapshot`] for the borrowed per-timestamp view in between,
//! [`RetraSyn::release`] to close the session (mid-stream or at the
//! horizon), [`RetraSyn::reset`] to start the next one. Batch mode
//! (`run(&dataset)`) comes from the [`StreamingEngine`] trait and is just
//! a session driven by a [`crate::TimelineSource`].

use crate::allocation::{AllocationKind, Allocator};
use crate::collect::CollectError;
use crate::collect::CollectionPool;
use crate::compact::CompactionStats;
use crate::config::{Division, RetraSynConfig};
use crate::dmu;
use crate::model::GlobalMobilityModel;
use crate::population::{UserRegistry, UserStatus};
use crate::session::{check_events, SessionError, StepOutcome, StreamingEngine};
use crate::store::SnapshotView;
use crate::synthesis::SyntheticDb;
use crate::wal::{Dec, Enc, Fingerprint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_geo::{GriddedDataset, Space, Topology, TransitionState, TransitionTable, UserEvent};
use retrasyn_ldp::{CollectionKernel, Estimate, Oue, Philox, ReportMode, WEventLedger};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Accumulated component times in seconds (Table V rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// User-side computation (perturbation / report simulation): the
    /// wall-clock of the whole collection round — when
    /// `collection_threads > 1` this covers shard dispatch, the per-shard
    /// fused perturb→tally passes and the accumulator merge.
    pub user_side: f64,
    /// Mobility model construction (aggregation, debias, update).
    pub model_construction: f64,
    /// Dynamic mobility update (significant-transition selection).
    pub dmu: f64,
    /// Real-time synthesis (point generation + size adjustment).
    pub synthesis: f64,
}

/// Wall-clock source for [`StepTimings`] telemetry.
///
/// The single sanctioned clock read in this module: timings are
/// observability output (Table V rows), never inputs to collection or
/// synthesis, so the determinism argument is unaffected.
#[allow(clippy::disallowed_methods)]
fn telemetry_clock() -> Instant {
    Instant::now() // xtask:allow(DET002, timings are telemetry-only and never feed the output stream)
}

/// Average per-timestamp component times (Table V).
#[derive(Debug, Clone, Copy)]
pub struct TimingReport {
    /// Average user-side seconds per timestamp.
    pub user_side: f64,
    /// Average model-construction seconds per timestamp.
    pub model_construction: f64,
    /// Average DMU seconds per timestamp.
    pub dmu: f64,
    /// Average synthesis seconds per timestamp.
    pub synthesis: f64,
    /// Average total seconds per timestamp.
    pub total: f64,
    /// Number of steps executed.
    pub steps: u64,
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "user_side={:.6}s model={:.6}s dmu={:.6}s synthesis={:.6}s total={:.6}s (avg over {} steps)",
            self.user_side, self.model_construction, self.dmu, self.synthesis, self.total, self.steps
        )
    }
}

/// The RetraSyn engine.
#[derive(Debug)]
pub struct RetraSyn {
    config: RetraSynConfig,
    division: Division,
    table: TransitionTable,
    model: GlobalMobilityModel,
    registry: UserRegistry,
    ledger: WEventLedger,
    synthetic: SyntheticDb,
    allocator: Allocator,
    rng: StdRng,
    /// Construction seed, kept so [`Self::reset`] replays identically.
    seed: u64,
    next_t: u64,
    /// Set by [`Self::release`]; a released engine refuses to step until
    /// [`Self::reset`].
    released: bool,
    /// Fixed synthetic size for the NoEQ ablation (captured at the first
    /// step).
    fixed_size: Option<usize>,
    /// Per-user report slots for the RandomReport strategy. Entries are
    /// pruned when their user quits, so the map tracks only users that can
    /// still report (bounded by the live population, not the all-time
    /// arrival count).
    report_slots: BTreeMap<u64, u64>,
    /// Cached collection oracle, rebuilt only when `(ε, domain)` changes —
    /// the collection path runs every timestamp and must not rebuild its
    /// mechanism per step. `Arc` so pooled collection workers share a
    /// snapshot without cloning the mechanism's skip table.
    oracle: Option<Arc<Oue>>,
    /// Persistent collection worker pool, created lazily on the first
    /// collection round with `collection_threads > 1`.
    collector: Option<CollectionPool>,
    timings: StepTimings,
    steps: u64,
    /// Counters for the epoch compactions this session has run
    /// (informational; empty unless `config.compaction` is set).
    compaction_stats: CompactionStats,
    /// One-time warning latch for the graceful-degradation path (live
    /// population alone above the high-water mark).
    overflow_warned: bool,
    /// Reused reporter-value scratch for the collection path.
    scratch_values: Vec<usize>,
    /// Reused per-step event scratch: (user, domain index) states.
    scratch_states: Vec<(u64, usize)>,
    /// Reused per-step event scratch: users delivering their Quit state.
    scratch_quitters: Vec<u64>,
    /// Reused per-step scratch: the eligible (then sampled) report group.
    scratch_eligible: Vec<(u64, usize)>,
    /// Reused domain-sized scratch: raw ones counts of the current round.
    scratch_ones: Vec<u64>,
    /// Reused estimate of the current round (`freqs` buffer recycled
    /// across steps — a collection round allocates nothing after
    /// warm-up).
    scratch_est: Estimate,
    /// Reused table-sized scratch: full-domain estimate vector.
    scratch_full: Vec<f64>,
    /// Reused table-sized scratch: full-domain selection mask.
    scratch_sel: Vec<bool>,
    /// Reused table-sized scratch: DMU selection over the collected domain.
    scratch_dmu: Vec<bool>,
}

impl RetraSyn {
    /// Create an engine over any discretization — a legacy [`retrasyn_geo::Grid`],
    /// a [`retrasyn_geo::UniformGrid`], a [`retrasyn_geo::QuadGrid`], or an
    /// already-compiled [`Topology`].
    pub fn new<S: Space>(config: RetraSynConfig, space: S, division: Division, seed: u64) -> Self {
        let table = TransitionTable::new(&space);
        let model = GlobalMobilityModel::new(table.len());
        let allocator =
            Allocator::new(config.allocation, config.w, config.alpha, config.kappa, config.p_max);
        let ledger = WEventLedger::new(config.eps, config.w);
        if division == Division::Budget {
            assert!(
                config.allocation != AllocationKind::RandomReport,
                "RandomReport is a population-division strategy"
            );
        }
        let domain = table.len();
        let w = config.w;
        RetraSyn {
            config,
            division,
            table,
            model,
            registry: UserRegistry::new(w),
            ledger,
            synthetic: SyntheticDb::new(),
            allocator,
            rng: StdRng::seed_from_u64(seed),
            seed,
            next_t: 0,
            released: false,
            fixed_size: None,
            report_slots: BTreeMap::new(),
            oracle: None,
            collector: None,
            timings: StepTimings::default(),
            steps: 0,
            compaction_stats: CompactionStats::default(),
            overflow_warned: false,
            scratch_values: Vec::new(),
            scratch_states: Vec::new(),
            scratch_quitters: Vec::new(),
            scratch_eligible: Vec::new(),
            scratch_ones: Vec::new(),
            scratch_est: Estimate::default(),
            scratch_full: vec![0.0; domain],
            scratch_sel: vec![false; domain],
            scratch_dmu: Vec::new(),
        }
    }

    /// RetraSyn_b: budget-division engine.
    pub fn budget_division<S: Space>(config: RetraSynConfig, space: S, seed: u64) -> Self {
        Self::new(config, space, Division::Budget, seed)
    }

    /// RetraSyn_p: population-division engine.
    pub fn population_division<S: Space>(config: RetraSynConfig, space: S, seed: u64) -> Self {
        Self::new(config, space, Division::Population, seed)
    }

    /// The privacy ledger (verify with [`WEventLedger::verify`]).
    pub fn ledger(&self) -> &WEventLedger {
        &self.ledger
    }

    /// The current global mobility model.
    pub fn model(&self) -> &GlobalMobilityModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &RetraSynConfig {
        &self.config
    }

    /// The division strategy.
    pub fn division(&self) -> Division {
        self.division
    }

    /// The compiled discretization this engine synthesizes over.
    pub fn topology(&self) -> &Arc<Topology> {
        self.table.topology()
    }

    /// The timestamp the next [`Self::step`] must carry.
    pub fn next_timestamp(&self) -> u64 {
        self.next_t
    }

    /// Number of live synthetic streams.
    ///
    /// # Panics
    ///
    /// If the session was already released (the streams moved out with the
    /// release — a silent 0 here would misread as a population collapse).
    pub fn synthetic_active(&self) -> usize {
        self.snapshot().active_count()
    }

    /// Per-cell occupancy of the live synthetic population — the real-time
    /// release a downstream monitor consumes (post-processing; no
    /// additional privacy cost by Theorem 2).
    ///
    /// # Panics
    ///
    /// If the session was already released (see [`Self::snapshot`]).
    pub fn synthetic_occupancy(&self) -> Vec<u64> {
        self.snapshot().occupancy(self.table.num_cells())
    }

    /// Collection domain: the full transition domain, or the movement
    /// prefix when enter/quit modelling is disabled (NoEQ).
    fn domain_len(&self) -> usize {
        if self.config.enter_quit {
            self.table.len()
        } else {
            self.table.num_moves()
        }
    }

    /// Average per-timestamp component timings (Table V).
    pub fn timing_report(&self) -> TimingReport {
        let n = self.steps.max(1) as f64;
        let t = &self.timings;
        TimingReport {
            user_side: t.user_side / n,
            model_construction: t.model_construction / n,
            dmu: t.dmu / n,
            synthesis: t.synthesis / n,
            total: (t.user_side + t.model_construction + t.dmu + t.synthesis) / n,
            steps: self.steps,
        }
    }

    /// Advance one timestamp. `events` are the transition states held by
    /// the participating streams at `t` (from
    /// [`retrasyn_geo::EventTimeline::at`] or any
    /// [`crate::EventSource`]). Timestamps must be fed in order starting
    /// from 0. Panicking wrapper over [`Self::try_step`]; the panic
    /// message is the error's `Display` rendering.
    pub fn step(&mut self, t: u64, events: &[UserEvent]) -> StepOutcome {
        match self.try_step(t, events) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Advance one timestamp, reporting misuse and mid-step faults as a
    /// typed [`SessionError`] instead of panicking.
    ///
    /// The batch is validated in a pure pre-pass (no RNG consumed, no
    /// state mutated) before ingestion: a released session, a
    /// non-consecutive timestamp, an out-of-domain cell or a non-adjacent
    /// `Move` all return a *pre-state* error that leaves the engine
    /// untouched and steppable — in release builds as well as debug (the
    /// historical path only `debug_assert`ed the event domain, silently
    /// mis-tallying malformed input in release mode). For well-formed
    /// input the step is bit-identical to what it always was.
    ///
    /// A *mid-step* error (collection or pool failure) leaves the session
    /// in an unspecified state: recover it from its WAL (e.g. via a
    /// [`Supervisor`](crate::supervise::Supervisor)) or [`Self::reset`].
    pub fn try_step(&mut self, t: u64, events: &[UserEvent]) -> Result<StepOutcome, SessionError> {
        if self.released {
            return Err(SessionError::Released);
        }
        if t != self.next_t {
            return Err(SessionError::timestamp(self.next_t, t));
        }
        check_events(&self.table, t, events)?;
        self.next_t += 1;
        self.steps += 1;

        // States in domain space; NoEQ drops enter/quit events. The event
        // scratch buffers are engine fields so the per-step bookkeeping
        // allocates nothing after warm-up.
        let domain = self.domain_len();
        let mut states = std::mem::take(&mut self.scratch_states);
        states.clear();
        self.scratch_quitters.clear();
        let mut target_active = 0usize;
        for e in events {
            if let TransitionState::Quit(_) = e.state {
                self.scratch_quitters.push(e.user);
            } else {
                target_active += 1;
            }
            if !self.config.enter_quit && !matches!(e.state, TransitionState::Move { .. }) {
                continue;
            }
            // Safe after the check_events pre-pass: every cell is in
            // domain and every Move is adjacency-constrained.
            let idx =
                self.table.index_of(e.state).expect("timeline events are reachability-constrained");
            debug_assert!(idx < domain);
            states.push((e.user, idx));
        }

        let collected = match self.division {
            Division::Population => self.collect_population(t, &states),
            Division::Budget => self.collect_budget(t, &states),
        };
        self.scratch_states = states;
        collected?;
        for &u in &self.scratch_quitters {
            self.registry.mark_quitted(u);
            // A quitted user never reports again: drop its RandomReport
            // slot so the map stays bounded on churning streams.
            self.report_slots.remove(&u);
        }

        let estimate = std::mem::take(&mut self.scratch_est);
        self.update_model(t, &estimate);
        self.scratch_est = estimate;

        // Real-time synthesis (§III-D).
        let timer = telemetry_clock();
        if self.config.enter_quit {
            self.synthetic.try_step_parallel(
                t,
                &self.model,
                &self.table,
                target_active,
                self.config.lambda,
                &mut self.rng,
                self.config.synthesis_threads,
            )?;
        } else {
            let size = *self.fixed_size.get_or_insert(target_active);
            self.synthetic.step_no_eq(t, &self.model, &self.table, size, &mut self.rng);
        }
        self.timings.synthesis += timer.elapsed().as_secs_f64();
        self.maybe_compact(t);
        Ok(StepOutcome {
            t,
            active: self.synthetic.active_count(),
            finished: self.synthetic.finished_count(),
        })
    }

    /// Epoch-compact the synthetic store when the resident arena exceeds
    /// the configured high-water mark. Purely an operational memory bound:
    /// it never changes what [`Self::snapshot`] or [`Self::release`]
    /// observe. If the *live* population alone exceeds the mark the engine
    /// degrades gracefully — it logs once, counts the overflow and keeps
    /// running uncompacted rather than aborting the stream.
    fn maybe_compact(&mut self, t: u64) {
        let Some(policy) = self.config.compaction else { return };
        let mark = policy.high_water_cells;
        if self.synthetic.resident_cells() <= mark {
            return;
        }
        let (streams, cells) = self.synthetic.compact(t);
        self.compaction_stats.runs += 1;
        self.compaction_stats.frozen_streams += streams as u64;
        self.compaction_stats.frozen_cells += cells as u64;
        let resident = self.synthetic.resident_cells();
        if resident > mark {
            self.compaction_stats.overflows += 1;
            if !self.overflow_warned {
                self.overflow_warned = true;
                eprintln!(
                    "retrasyn: live synthetic population ({resident} cells) exceeds the \
                     compaction high-water mark ({mark}); continuing uncompacted above the mark"
                );
            }
        }
    }

    /// Counters for the epoch compactions run so far (all zero unless the
    /// configuration enables compaction via
    /// [`RetraSynConfig::with_compaction`]).
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction_stats
    }

    /// Resident synthetic arena cells (live tails + frozen chunks); the
    /// quantity bounded by the compaction high-water mark.
    pub fn resident_cells(&self) -> usize {
        self.synthetic.resident_cells()
    }

    /// Borrowed, zero-copy view of the synthetic database as of the last
    /// completed step (Algorithm 1's per-timestamp release; reading it is
    /// post-processing and costs no privacy budget).
    ///
    /// # Panics
    ///
    /// If the session was already released — the streams moved out with
    /// the release, so an "empty" view here would misread as a population
    /// collapse.
    pub fn snapshot(&self) -> SnapshotView<'_> {
        assert!(
            !self.released,
            "engine already released its session; query the released dataset \
             (or reset() and start a new stream) instead of snapshot()"
        );
        self.synthetic.snapshot(self.next_t)
    }

    /// Close the session and release everything synthesized over
    /// `0..next_timestamp()` as an id-sorted [`GriddedDataset`].
    /// Zero-copy (the store's cells move into the dataset) and callable
    /// mid-stream. Afterwards the engine refuses to step until
    /// [`Self::reset`]; accessors (ledger, model, timings) keep reporting
    /// the closed session.
    ///
    /// # Panics
    ///
    /// If the session was already released.
    pub fn release(&mut self) -> GriddedDataset {
        match self.try_release() {
            Ok(dataset) => dataset,
            Err(e) => panic!("{e}"),
        }
    }

    /// Close the session (see [`Self::release`]), failing with
    /// [`SessionError::Released`] instead of panicking when the session
    /// was already released.
    pub fn try_release(&mut self) -> Result<GriddedDataset, SessionError> {
        if self.released {
            return Err(SessionError::Released);
        }
        self.released = true;
        Ok(self.synthetic.release(self.table.topology(), self.next_t))
    }

    /// Start a new session: restore the freshly-constructed state in
    /// place, re-seeded with the construction seed — replaying the same
    /// events yields a bit-identical release. Worker pools, the cached
    /// collection oracle and all scratch buffers survive the reset (they
    /// are pure functions of the configuration, which is untouched), so
    /// back-to-back sessions spawn no new threads and re-allocate nothing.
    pub fn reset(&mut self) {
        self.model.reset();
        self.registry.reset();
        self.ledger.reset();
        self.synthetic.reset();
        self.allocator.reset();
        self.rng = StdRng::seed_from_u64(self.seed);
        self.next_t = 0;
        self.released = false;
        self.fixed_size = None;
        self.report_slots.clear();
        self.timings = StepTimings::default();
        self.steps = 0;
        self.compaction_stats = CompactionStats::default();
        self.overflow_warned = false;
        // NoEQ's model refresh relies on the uncollected tails of these
        // staying at their zero/false initialization.
        self.scratch_full.iter_mut().for_each(|f| *f = 0.0);
        self.scratch_sel.iter_mut().for_each(|s| *s = false);
    }

    /// Stable fingerprint of everything that shapes this engine's output:
    /// seed, division, every output-affecting configuration knob (thread
    /// counts included — sharding changes RNG consumption order) and the
    /// discretization descriptor. WAL files and checkpoints carry it so recovery
    /// refuses to replay a log into a differently-configured engine.
    /// Purely operational settings (compaction, fsync policy) are
    /// excluded: they never change the released bytes.
    pub fn fingerprint(&self) -> u64 {
        let c = &self.config;
        let mut f = Fingerprint::new("retrasyn");
        f.u64(self.seed)
            .u64(match self.division {
                Division::Budget => 0,
                Division::Population => 1,
            })
            .f64(c.eps)
            .usize(c.w)
            .u64(match c.allocation {
                AllocationKind::Adaptive => 0,
                AllocationKind::Uniform => 1,
                AllocationKind::Sample => 2,
                AllocationKind::RandomReport => 3,
            })
            .f64(c.alpha)
            .usize(c.kappa)
            .f64(c.p_max)
            .f64(c.lambda)
            .u64(match c.report_mode {
                ReportMode::PerUser => 0,
                ReportMode::Aggregate => 1,
            })
            .u64(c.dmu as u64)
            .u64(c.enter_quit as u64)
            .usize(c.synthesis_threads)
            .usize(c.collection_threads)
            .u64(match c.collection_kernel {
                CollectionKernel::Sequential => 0,
                CollectionKernel::Blocked => 1,
            })
            .space(self.table.topology().descriptor());
        f.finish()
    }

    /// Serialize the full mid-stream session state. Returns `None` once
    /// the session has released (there is nothing left to checkpoint — a
    /// recovery would have no streams to resume).
    fn encode_checkpoint(&self) -> Option<Vec<u8>> {
        if self.released {
            return None;
        }
        let mut enc = Enc::default();
        enc.u64(self.next_t);
        enc.u64(self.steps);
        match self.fixed_size {
            Some(n) => {
                enc.u8(1);
                enc.u64(n as u64);
            }
            None => {
                enc.u8(0);
                enc.u64(0);
            }
        }
        for word in self.rng.state() {
            enc.u64(word);
        }
        let mut slots: Vec<(u64, u64)> = self.report_slots.iter().map(|(&u, &s)| (u, s)).collect();
        slots.sort_unstable();
        enc.usize(slots.len());
        for (user, slot) in slots {
            enc.u64(user);
            enc.u64(slot);
        }
        let freqs = self.model.freqs();
        enc.usize(freqs.len());
        for &f in freqs {
            enc.f64(f);
        }
        self.registry.encode_into(&mut enc);
        self.allocator.encode_into(&mut enc);
        let (per_ts_eps, reports) = self.ledger.export_state();
        enc.usize(per_ts_eps.len());
        for &e in &per_ts_eps {
            enc.f64(e);
        }
        enc.usize(reports.len());
        for (user, t) in reports {
            enc.u64(user);
            enc.u64(t);
        }
        self.synthetic.encode_into(&mut enc);
        Some(enc.buf)
    }

    /// Restore a session from [`Self::encode_checkpoint`] output. Every
    /// structural invariant is validated; on `Err` the engine may hold
    /// partially-restored state and the caller must [`Self::reset`] before
    /// reuse (recovery does).
    fn decode_checkpoint(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut dec = Dec::new(payload);
        let next_t = dec.u64()?;
        let steps = dec.u64()?;
        let has_fixed = match dec.u8()? {
            0 => false,
            1 => true,
            tag => return Err(format!("bad fixed-size tag {tag}")),
        };
        let fixed = dec.u64()?;
        let rng_state = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let slot_count = dec.usize()?;
        let mut slots = Vec::with_capacity(slot_count.min(1 << 20));
        for _ in 0..slot_count {
            let user = dec.u64()?;
            let slot = dec.u64()?;
            slots.push((user, slot));
        }
        let freq_len = dec.usize()?;
        if freq_len != self.table.len() {
            return Err(format!(
                "checkpoint model domain {freq_len} != engine transition domain {}",
                self.table.len()
            ));
        }
        self.scratch_full.clear();
        self.scratch_full.resize(freq_len, 0.0);
        for f in self.scratch_full.iter_mut() {
            *f = dec.f64()?;
        }
        self.registry.decode_from(&mut dec)?;
        self.allocator.decode_from(&mut dec)?;
        let eps_count = dec.usize()?;
        let mut per_ts_eps = Vec::with_capacity(eps_count.min(1 << 20));
        for _ in 0..eps_count {
            per_ts_eps.push(dec.f64()?);
        }
        let report_count = dec.usize()?;
        let mut reports = Vec::with_capacity(report_count.min(1 << 20));
        for _ in 0..report_count {
            let user = dec.u64()?;
            let t = dec.u64()?;
            reports.push((user, t));
        }
        self.synthetic.decode_from(&mut dec)?;
        dec.finish()?;

        self.next_t = next_t;
        self.steps = steps;
        self.released = false;
        self.fixed_size = if has_fixed { Some(fixed as usize) } else { None };
        self.rng = StdRng::from_state(rng_state);
        self.report_slots.clear();
        self.report_slots.extend(slots);
        self.model.replace_all(&self.scratch_full);
        self.model.rebuild_samplers(&self.table);
        self.ledger.import_state(&per_ts_eps, &reports);
        // The freq scratch doubled as the decode buffer; restore its
        // zero-tail invariant for the NoEQ refresh path.
        self.scratch_full.iter_mut().for_each(|f| *f = 0.0);
        self.scratch_sel.iter_mut().for_each(|s| *s = false);
        Ok(())
    }

    /// Population-division collection (Algorithm 1 lines 7–14). Fills
    /// [`Self::scratch_est`] with the round's estimate.
    fn collect_population(&mut self, t: u64, states: &[(u64, usize)]) -> Result<(), SessionError> {
        // Line 7: register arrivals (quitters still deliver their farewell
        // state if sampled, so they are registered too).
        for &(u, _) in states {
            if self.registry.status(u).is_none() {
                self.registry.register(u);
                if self.allocator.kind() == AllocationKind::RandomReport {
                    let slot = t + self.rng.random_range(0..self.config.w as u64);
                    self.report_slots.insert(u, slot);
                }
            }
        }
        // Line 9: recycle users that reported at t − w.
        self.registry.recycle(t);

        // Lines 10–12: determine the report group in the reused scratch.
        // The eligible order is deterministic (event order of the
        // timeline), so sampling from it directly preserves the fixed-seed
        // determinism contract.
        let active_count = self.registry.active_count();
        let mut eligible = std::mem::take(&mut self.scratch_eligible);
        eligible.clear();
        eligible.extend(
            states.iter().filter(|&&(u, _)| self.registry.status(u) == Some(UserStatus::Active)),
        );
        if self.allocator.kind() == AllocationKind::RandomReport {
            let w = self.config.w as u64;
            eligible.retain(|&(u, _)| {
                let slot = self.report_slots[&u];
                t >= slot && (t - slot).is_multiple_of(w)
            });
        } else {
            let p = self.allocator.portion(t);
            let n_t = ((p * active_count as f64).round() as usize).min(eligible.len());
            // Partial Fisher–Yates: place a uniform n_t-subset (in uniform
            // order) in the first n_t positions — O(n_t) draws instead of
            // shuffling the entire eligible set to keep a prefix.
            for i in 0..n_t {
                let j = self.rng.random_range(i..eligible.len());
                eligible.swap(i, j);
            }
            eligible.truncate(n_t);
        }

        // Lines 13–14: report with the full budget; mark inactive.
        let timer = telemetry_clock();
        self.scratch_values.clear();
        self.scratch_values.extend(eligible.iter().map(|&(_, s)| s));
        let collected = self.run_collection(self.config.eps);
        self.timings.user_side += timer.elapsed().as_secs_f64();
        for &(u, _) in &eligible {
            self.registry.mark_reported(u, t);
            self.ledger.record_user_report(u, t);
        }
        self.scratch_eligible = eligible;
        collected
    }

    /// Budget-division collection: everyone reports with ε_t. Fills
    /// [`Self::scratch_est`] with the round's estimate.
    fn collect_budget(&mut self, t: u64, states: &[(u64, usize)]) -> Result<(), SessionError> {
        let eps_t = match self.allocator.kind() {
            AllocationKind::Uniform => self.config.eps / self.config.w as f64,
            AllocationKind::Sample => {
                if t.is_multiple_of(self.config.w as u64) {
                    self.ledger.remaining_budget(t)
                } else {
                    0.0
                }
            }
            AllocationKind::Adaptive => {
                let p = self.allocator.portion(t);
                p * self.ledger.remaining_budget(t)
            }
            AllocationKind::RandomReport => unreachable!("checked in constructor"),
        };
        let eps_t = eps_t.min(self.ledger.remaining_budget(t));
        if eps_t <= 1e-9 || states.is_empty() {
            self.scratch_est.reset_empty(self.domain_len());
            return Ok(());
        }
        self.ledger.record_budget(t, eps_t);
        let timer = telemetry_clock();
        self.scratch_values.clear();
        self.scratch_values.extend(states.iter().map(|&(_, s)| s));
        let collected = self.run_collection(eps_t);
        self.timings.user_side += timer.elapsed().as_secs_f64();
        collected
    }

    /// Shared collection tail: run one OUE round over
    /// [`Self::scratch_values`] with per-report budget `eps`, filling
    /// [`Self::scratch_est`]. Per-user rounds run the configured
    /// [`CollectionKernel`] — `Sequential` keeps the historical fused
    /// perturb→tally stream (one seed per shard when pooled); `Blocked`
    /// draws exactly **one** key from the session RNG and hands it to the
    /// counter-based kernel, whose output is bit-identical at every
    /// `collection_threads` value. Sharded across the persistent
    /// [`CollectionPool`] when `collection_threads > 1` *and* the round
    /// simulates per-user reports — the per-user work is what
    /// parallelizes; the O(domain) `Aggregate` shortcut would only
    /// multiply its binomial draws by the shard count, so it always runs
    /// sequentially and ignores the kernel. Every buffer involved is
    /// engine scratch — zero heap allocations after warm-up.
    ///
    /// The collected states are in domain by construction (the `try_step`
    /// pre-pass validated every event), so a mechanism error here is a
    /// genuine mid-step fault — surfaced as a typed [`SessionError`]
    /// rather than the historical `.expect("states are in domain")`
    /// aborts. A dead pool worker additionally drops the poisoned
    /// collection pool so post-recovery rounds spawn a fresh one.
    fn run_collection(&mut self, eps: f64) -> Result<(), SessionError> {
        let n = self.scratch_values.len() as u64;
        if n == 0 {
            self.scratch_est.reset_empty(self.domain_len());
            return Ok(());
        }
        self.ensure_oracle(eps, self.domain_len().max(2));
        let oracle = Arc::clone(self.oracle.as_ref().expect("ensured above"));
        let values = std::mem::take(&mut self.scratch_values);
        let per_user = self.config.report_mode == ReportMode::PerUser;
        let result: Result<(), CollectError> = if per_user
            && self.config.collection_kernel == CollectionKernel::Blocked
        {
            // Blocked counter-based kernel: the round's entire randomness
            // is one key (a single u64 draw, however many threads run),
            // and the pooled round is bit-identical to the unsharded one.
            let ph = Philox::new(self.rng.random());
            if self.config.collection_threads > 1 {
                let threads = self.config.collection_threads;
                let pool = self.collector.get_or_insert_with(|| CollectionPool::new(threads));
                pool.collect_ones_blocked(&oracle, &values, &ph, &mut self.scratch_ones).map(|_| ())
            } else {
                oracle
                    .collect_ones_blocked(&values, 0, &ph, &mut self.scratch_ones)
                    .map_err(CollectError::Ldp)
            }
        } else if per_user && self.config.collection_threads > 1 {
            let threads = self.config.collection_threads;
            let pool = self.collector.get_or_insert_with(|| CollectionPool::new(threads));
            pool.collect_ones(
                &oracle,
                &values,
                self.config.report_mode,
                &mut self.scratch_ones,
                &mut self.rng,
            )
            .map(|_| ())
        } else {
            oracle
                .collect_ones_into(
                    &values,
                    self.config.report_mode,
                    &mut self.scratch_ones,
                    &mut self.rng,
                )
                .map_err(CollectError::Ldp)
        };
        self.scratch_values = values;
        match result {
            Ok(()) => {
                oracle.debias_into(&self.scratch_ones, n, &mut self.scratch_est.freqs);
                self.scratch_est.n = n;
                self.scratch_est.variance = oracle.variance(n);
                Ok(())
            }
            Err(CollectError::Pool(e)) => {
                self.collector = None;
                Err(SessionError::Pool(e))
            }
            Err(CollectError::Ldp(e)) => Err(SessionError::Collection { detail: e.to_string() }),
        }
    }

    /// Make the cached collection oracle current for `(eps, domain)`. The
    /// population path hits the cache every step (fixed ε); budget paths
    /// rebuild only when the allocated ε changes.
    fn ensure_oracle(&mut self, eps: f64, domain: usize) {
        let fresh = matches!(&self.oracle, Some(o) if o.eps() == eps && o.domain() == domain);
        if !fresh {
            self.oracle = Some(Arc::new(Oue::new(eps, domain).expect("validated positive eps")));
        }
    }

    /// DMU + model refresh (§III-C) and allocator feedback.
    ///
    /// All table-sized working vectors are reusable scratch buffers on the
    /// engine — this path runs every timestamp and must not allocate. The
    /// scratch tails beyond the collected domain stay at their zero/false
    /// initialization (NoEQ never collects the enter/quit suffix).
    fn update_model(&mut self, t: u64, estimate: &Estimate) {
        let domain = self.domain_len();
        let mut sig_ratio = 0.0;
        if estimate.n > 0 {
            if t == 0 || !self.config.dmu {
                // Initialization (Alg. 1 line 5) and the AllUpdate ablation
                // replace the whole (collected) domain.
                let timer = telemetry_clock();
                self.scratch_full[..domain].copy_from_slice(&estimate.freqs);
                // Preserve uncollected tail (NoEQ never touches it: zeros).
                self.model.replace_all(&self.scratch_full);
                self.timings.model_construction += timer.elapsed().as_secs_f64();
                sig_ratio = 1.0;
            } else {
                let timer = telemetry_clock();
                dmu::select_significant_into(
                    &self.model.freqs()[..domain],
                    &estimate.freqs,
                    estimate.variance,
                    &mut self.scratch_dmu,
                );
                let count = dmu::count_selected(&self.scratch_dmu);
                self.timings.dmu += timer.elapsed().as_secs_f64();

                let timer = telemetry_clock();
                self.scratch_sel[..domain].copy_from_slice(&self.scratch_dmu);
                self.scratch_full[..domain].copy_from_slice(&estimate.freqs);
                self.model.update_selected(&self.scratch_sel, &self.scratch_full);
                self.timings.model_construction += timer.elapsed().as_secs_f64();
                sig_ratio = count as f64 / domain as f64;
            }
        }
        // Keep the O(1) alias samplers in sync with the refreshed model;
        // only the rows DMU touched are rebuilt.
        let timer = telemetry_clock();
        self.model.rebuild_samplers(&self.table);
        self.timings.model_construction += timer.elapsed().as_secs_f64();
        self.allocator.observe(&self.model.freqs()[..domain], sig_ratio);
    }
}

impl StreamingEngine for RetraSyn {
    fn topology(&self) -> &Arc<Topology> {
        RetraSyn::topology(self)
    }

    fn next_timestamp(&self) -> u64 {
        RetraSyn::next_timestamp(self)
    }

    fn try_step(&mut self, t: u64, events: &[UserEvent]) -> Result<StepOutcome, SessionError> {
        RetraSyn::try_step(self, t, events)
    }

    fn snapshot(&self) -> SnapshotView<'_> {
        RetraSyn::snapshot(self)
    }

    fn try_release(&mut self) -> Result<GriddedDataset, SessionError> {
        RetraSyn::try_release(self)
    }

    fn ledger(&self) -> &WEventLedger {
        RetraSyn::ledger(self)
    }

    fn reset(&mut self) {
        RetraSyn::reset(self);
    }

    fn fingerprint(&self) -> u64 {
        RetraSyn::fingerprint(self)
    }

    fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        self.encode_checkpoint()
    }

    fn restore_checkpoint(&mut self, payload: &[u8]) -> Result<(), String> {
        self.decode_checkpoint(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_datagen::{RandomWalkConfig, RegimeShiftConfig};
    use retrasyn_geo::{EventTimeline, Grid, StreamDataset};

    fn walk_dataset(seed: u64) -> StreamDataset {
        RandomWalkConfig { users: 300, timestamps: 30, churn: 0.05, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn population_engine_runs_and_ledger_verifies() {
        let ds = walk_dataset(1);
        let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
        let mut engine = RetraSyn::population_division(config, Grid::unit(5), 7);
        let syn = engine.run(&ds);
        assert_eq!(syn.horizon(), 30);
        assert!(!syn.is_empty());
        engine.ledger().verify().expect("w-event invariant");
        assert!(engine.ledger().total_user_reports() > 0);
    }

    #[test]
    fn budget_engine_runs_and_ledger_verifies() {
        let ds = walk_dataset(2);
        let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
        let mut engine = RetraSyn::budget_division(config, Grid::unit(5), 7);
        let syn = engine.run(&ds);
        assert_eq!(syn.horizon(), 30);
        engine.ledger().verify().expect("w-event invariant");
    }

    #[test]
    fn all_allocations_satisfy_ledger() {
        let ds = walk_dataset(3);
        for kind in [AllocationKind::Adaptive, AllocationKind::Uniform, AllocationKind::Sample] {
            for division in [Division::Budget, Division::Population] {
                let config = RetraSynConfig::new(1.5, 4).with_lambda(10.0).with_allocation(kind);
                let mut engine = RetraSyn::new(config, Grid::unit(4), division, 11);
                let _ = engine.run(&ds);
                engine.ledger().verify().unwrap_or_else(|e| panic!("{kind:?}/{division:?}: {e}"));
            }
        }
        // RandomReport is population-only.
        let config = RetraSynConfig::new(1.5, 4)
            .with_lambda(10.0)
            .with_allocation(AllocationKind::RandomReport);
        let mut engine = RetraSyn::population_division(config, Grid::unit(4), 11);
        let _ = engine.run(&ds);
        engine.ledger().verify().expect("random-report invariant");
    }

    #[test]
    fn random_report_slots_pruned_on_quit() {
        // High-churn stream: users continuously quit and fresh ids arrive
        // to replace them. The RandomReport slot map must not grow with
        // the all-time arrival count — quitted users' slots are pruned.
        let ds = RandomWalkConfig { users: 300, timestamps: 40, churn: 0.25, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(21));
        let config = RetraSynConfig::new(1.0, 4)
            .with_lambda(10.0)
            .with_allocation(AllocationKind::RandomReport);
        let mut engine = RetraSyn::population_division(config, Grid::unit(4), 9);
        let _ = engine.run(&ds);
        // No quitted user retains a slot…
        for &u in engine.report_slots.keys() {
            assert_ne!(
                engine.registry.status(u),
                Some(UserStatus::Quitted),
                "user {u} quit but kept a RandomReport slot"
            );
        }
        // …so the map stays bounded by the users that can still report,
        // strictly below the all-time arrival count once churn retires
        // users.
        assert!(
            engine.report_slots.len() < engine.registry.total_seen(),
            "slots {} vs seen {}",
            engine.report_slots.len(),
            engine.registry.total_seen()
        );
    }

    #[test]
    #[should_panic(expected = "population-division strategy")]
    fn random_report_rejected_for_budget_division() {
        let config = RetraSynConfig::new(1.0, 4).with_allocation(AllocationKind::RandomReport);
        let _ = RetraSyn::budget_division(config, Grid::unit(4), 0);
    }

    #[test]
    fn synthetic_size_tracks_real_population() {
        let ds = walk_dataset(4);
        let gridded = ds.discretize(&Grid::unit(5));
        let config = RetraSynConfig::new(2.0, 5).with_lambda(10.0);
        let mut engine = RetraSyn::population_division(config, Grid::unit(5), 3);
        let timeline = EventTimeline::build(&gridded);
        for t in 0..gridded.horizon() {
            engine.step(t, timeline.at(t));
            assert_eq!(
                engine.synthetic_active(),
                gridded.active_count(t),
                "size mismatch at t={t}"
            );
        }
    }

    #[test]
    fn noeq_keeps_fixed_size() {
        let ds = walk_dataset(5);
        let gridded = ds.discretize(&Grid::unit(5));
        let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0).no_eq();
        let mut engine = RetraSyn::population_division(config, Grid::unit(5), 3);
        let timeline = EventTimeline::build(&gridded);
        let init = gridded.active_count(0);
        for t in 0..gridded.horizon() {
            engine.step(t, timeline.at(t));
            assert_eq!(engine.synthetic_active(), init, "t={t}");
        }
        // NoEQ synthetic streams never terminate.
        let syn = engine.release();
        for s in syn.iter() {
            assert_eq!(s.start, 0);
            assert_eq!(s.len(), 30);
        }
    }

    #[test]
    fn all_update_refreshes_whole_model() {
        let ds = walk_dataset(6);
        let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0).all_update();
        let mut engine = RetraSyn::population_division(config, Grid::unit(4), 3);
        let _ = engine.run(&ds);
        engine.ledger().verify().expect("ledger");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = walk_dataset(7);
        let run = |seed| {
            let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
            let mut engine = RetraSyn::population_division(config, Grid::unit(5), seed);
            engine.run(&ds)
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.num_streams(), b.num_streams());
        assert_eq!(a.stream(0), b.stream(0));
        // Different seeds diverge somewhere.
        let same = a.num_streams() == c.num_streams() && a.iter().eq(c.iter());
        assert!(!same, "different seeds produced identical output");
    }

    #[test]
    fn timing_report_accumulates() {
        let ds = walk_dataset(8);
        let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
        let mut engine = RetraSyn::population_division(config, Grid::unit(5), 3);
        let _ = engine.run(&ds);
        let report = engine.timing_report();
        assert_eq!(report.steps, 30);
        assert!(report.total > 0.0);
        assert!(report.synthesis >= 0.0);
        assert!(report.to_string().contains("steps"));
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn out_of_order_steps_panic() {
        let config = RetraSynConfig::new(1.0, 5);
        let mut engine = RetraSyn::population_division(config, Grid::unit(4), 0);
        engine.step(1, &[]);
    }

    #[test]
    fn model_learns_dominant_flow() {
        // Regime-shift data: before the shift everyone moves +x. The model
        // learned by t=15 should put most movement mass on rightward moves.
        let ds = RegimeShiftConfig { users: 800, timestamps: 16, shift_at: 99, step: 0.05 }
            .generate(&mut StdRng::seed_from_u64(9));
        let grid = Grid::unit(6);
        let gridded = ds.discretize(&grid);
        let config = RetraSynConfig::new(2.0, 4).with_lambda(16.0);
        let mut engine = RetraSyn::population_division(config, grid.clone(), 5);
        let timeline = EventTimeline::build(&gridded);
        for t in 0..gridded.horizon() {
            engine.step(t, timeline.at(t));
        }
        let table = TransitionTable::new(&grid);
        let model = engine.model();
        let mut right = 0.0;
        let mut other = 0.0;
        for from in grid.cells() {
            let (fx, fy) = grid.cell_xy(from);
            let block = table.move_block(from);
            for (i, &to) in table.move_targets(from).iter().enumerate() {
                let (tx, ty) = grid.cell_xy(to);
                let f = model.freqs()[block.start + i];
                if ty == fy && tx == fx + 1 {
                    right += f;
                } else if to != from {
                    other += f;
                }
            }
        }
        assert!(right > other, "rightward mass {right} vs other {other}");
    }
}
