//! Precomputed O(1) categorical sampling for the synthesis hot path.
//!
//! The paper's real-time constraint (§IV-B, Table V) makes per-timestamp
//! synthesis cost the binding budget: every live synthetic stream draws one
//! movement per step. The seed implementation paid O(|N(c)|) per draw — a
//! linear scan over a freshly allocated probability vector. This module
//! provides:
//!
//! - [`AliasTable`]: Walker's alias method — O(n) build, O(1) draw, one
//!   uniform variate per sample;
//! - [`SamplerCache`]: the full per-model sampler state — one alias row per
//!   source cell over its movement block, the cached base quit probability
//!   per cell (Eq. 6 denominator folded in), and one alias table for the
//!   entering distribution. Rows are rebuilt *incrementally*: only the
//!   cells whose transitions DMU actually refreshed are reconstructed
//!   (§III-C selects a few percent of the domain per step, so rebuilds are
//!   proportionally cheap);
//! - [`sample_weighted`]: the reference O(n) scan sampler, kept for the
//!   cold paths, the cache-miss fallback, and distributional tests.
//!
//! The cache is shared with the persistent synthesis worker pool through an
//! `Arc`, so a step hands workers an immutable snapshot without copying.

use rand::Rng;
use retrasyn_geo::{CellId, TransitionTable};

/// Sample an index from non-negative weights with an O(n) scan; uniform
/// fallback when the total mass is zero. Assumes `weights` is non-empty.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.random_range(0..weights.len());
    }
    let mut pick = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// Build an alias row in place over `weights` (clamped at zero). Writes
/// `thresh`/`alias` (same length as `weights`); `small`/`large` are
/// reusable scratch stacks holding `(slot, residual-probability)` pairs.
/// Falls back to the uniform row when the total mass is zero or
/// non-finite.
///
/// Acceptance probabilities are stored as fixed-point `u32` thresholds
/// (`thresh[i] / 2^32`), so a draw is pure integer arithmetic: one `u64`
/// variate supplies 32 high bits for Lemire slot selection and 32 low bits
/// for the accept/alias test. The ≤ 2⁻³² fixed-point rounding is orders of
/// magnitude below anything the distributional tests (or the OUE noise
/// floor) can resolve.
fn build_alias_row(
    weights: &[f64],
    thresh: &mut [u32],
    alias: &mut [u32],
    small: &mut Vec<(u32, f64)>,
    large: &mut Vec<(u32, f64)>,
) {
    let n = weights.len();
    debug_assert!(n > 0 && thresh.len() == n && alias.len() == n);
    debug_assert!(n <= u32::MAX as usize);
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 || !total.is_finite() {
        // Uniform fallback: every slot accepts itself.
        for (i, (t, a)) in thresh.iter_mut().zip(alias.iter_mut()).enumerate() {
            *t = u32::MAX;
            *a = i as u32;
        }
        return;
    }
    small.clear();
    large.clear();
    let scale = n as f64 / total;
    for (i, &w) in weights.iter().enumerate() {
        let p = w.max(0.0) * scale;
        alias[i] = i as u32;
        if p < 1.0 {
            small.push((i as u32, p));
        } else {
            large.push((i as u32, p));
        }
    }
    while let (Some(&(s, ps)), Some(&mut (l, ref mut pl))) = (small.last(), large.last_mut()) {
        small.pop();
        alias[s as usize] = l;
        thresh[s as usize] = prob_to_thresh(ps);
        // Donate mass from the large slot to fill the small one.
        *pl = (*pl + ps) - 1.0;
        if *pl < 1.0 {
            let (l, pl) = large.pop().expect("just inspected");
            small.push((l, pl));
        }
    }
    // Numerical leftovers: slots still on a stack are within rounding of 1
    // and alias to themselves, so the threshold value is immaterial — use
    // the always-accept encoding.
    for &(i, _) in small.iter().chain(large.iter()) {
        thresh[i as usize] = u32::MAX;
        alias[i as usize] = i;
    }
}

/// Fixed-point encoding of an acceptance probability in [0, 1].
#[inline]
fn prob_to_thresh(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 4_294_967_296.0) as u32 // saturating cast
}

/// Draw from an alias row given its `thresh`/`alias` slices: one `u64`
/// variate, no floating-point operations.
#[inline]
fn sample_alias_row<R: Rng + ?Sized>(thresh: &[u32], alias: &[u32], rng: &mut R) -> usize {
    let n = thresh.len();
    debug_assert!(n > 0);
    let x = rng.random::<u64>();
    // Lemire map of the high 32 bits onto [0, n): bias O(n / 2^32).
    let slot = (((x >> 32) * n as u64) >> 32) as usize;
    if (x as u32) < thresh[slot] {
        slot
    } else {
        alias[slot] as usize
    }
}

/// A standalone Walker alias table over a categorical distribution.
///
/// O(n) to build, O(1) per draw. Negative weights are clamped to zero; an
/// all-zero distribution degrades to uniform (matching
/// [`sample_weighted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    thresh: Vec<u32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (possibly signed) weights. `weights` must be non-empty.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one category");
        let mut thresh = vec![0u32; weights.len()];
        let mut alias = vec![0u32; weights.len()];
        let mut small = Vec::new();
        let mut large = Vec::new();
        build_alias_row(weights, &mut thresh, &mut alias, &mut small, &mut large);
        AliasTable { thresh, alias }
    }

    /// Rebuild in place from new weights of the same length.
    pub fn rebuild(
        &mut self,
        weights: &[f64],
        small: &mut Vec<(u32, f64)>,
        large: &mut Vec<(u32, f64)>,
    ) {
        assert_eq!(weights.len(), self.thresh.len(), "alias table length change");
        build_alias_row(weights, &mut self.thresh, &mut self.alias, small, large);
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.thresh.len()
    }

    /// Whether the table has no categories (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.thresh.is_empty()
    }

    /// Draw one category index. O(1), one uniform variate.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_alias_row(&self.thresh, &self.alias, rng)
    }
}

/// Precomputed sampler state for a [`GlobalMobilityModel`] snapshot over a
/// fixed [`TransitionTable`].
///
/// Flat layout mirrors the topology's dense move space (CSR rows) for
/// cache locality, and every move slot packs its *entire* draw outcome
/// into one `u128` — fixed-point acceptance threshold (low 32 bits), the
/// slot's own destination cell (bits 32..64) and its alias's destination
/// cell (bits 64..96) — so one draw costs one RNG variate, one 16-byte
/// load and a few ALU ops, with no secondary target lookup. Workers on
/// the synthesis pool sample through a shared `Arc<SamplerCache>` without
/// touching the model or the table.
///
/// [`GlobalMobilityModel`]: crate::model::GlobalMobilityModel
#[derive(Debug, Clone)]
pub struct SamplerCache {
    /// Per-cell row offsets into `packed` (copy of the table's move
    /// offsets; `offsets[cells]` = number of move states).
    offsets: Vec<u32>,
    /// Packed move slots: `thresh | accept_cell << 32 | alias_cell << 64`.
    packed: Vec<u128>,
    /// Per-cell base termination probability `f_iQ / (Σ f_ix + f_iQ)`.
    quit_base: Vec<f64>,
    /// Per-cell clamped quit mass `max(f_iQ, 0)` — the numerator of the
    /// quitting distribution `Pr(q_j)`.
    quit_mass: Vec<f64>,
    /// Normalized quitting distribution `Pr(q_j)` (Eq. 6); uniform when
    /// the total quit mass is zero. Kept in sync by
    /// [`Self::rebuild_quit_dist`] so the shrink path reads O(1) weights
    /// instead of allocating a fresh O(cells) vector per step.
    quit_dist: Vec<f64>,
    /// Alias table over the entering distribution `Pr(e_i)`.
    enter: AliasTable,
    /// Domain length this cache was built for (consistency check).
    domain_len: usize,
    /// Reusable row scratch for rebuilds (always cleared after use).
    row_thresh: Vec<u32>,
    /// Reusable row scratch for rebuilds (always cleared after use).
    row_alias: Vec<u32>,
}

impl PartialEq for SamplerCache {
    fn eq(&self, other: &Self) -> bool {
        // Scratch buffers are not part of the cache's semantic state.
        self.offsets == other.offsets
            && self.packed == other.packed
            && self.quit_base == other.quit_base
            && self.quit_mass == other.quit_mass
            && self.quit_dist == other.quit_dist
            && self.enter == other.enter
            && self.domain_len == other.domain_len
    }
}

impl SamplerCache {
    /// Build the full cache from model frequencies.
    pub fn build(freqs: &[f64], table: &TransitionTable) -> Self {
        assert_eq!(freqs.len(), table.len(), "model / table domain mismatch");
        let cells = table.num_cells();
        let moves = table.num_moves();
        let offsets = table.move_offsets().to_vec();
        let mut cache = SamplerCache {
            offsets,
            packed: vec![0u128; moves],
            quit_base: vec![0.0; cells],
            quit_mass: vec![0.0; cells],
            quit_dist: vec![0.0; cells],
            // Built directly from the enter block (AliasTable clamps
            // negatives internally).
            enter: AliasTable::new(&freqs[moves..moves + cells]),
            domain_len: freqs.len(),
            row_thresh: Vec::new(),
            row_alias: Vec::new(),
        };
        let mut small = Vec::new();
        let mut large = Vec::new();
        for cell in 0..cells {
            cache.rebuild_row(freqs, table, cell, &mut small, &mut large);
        }
        cache.rebuild_quit_dist();
        cache
    }

    /// Rebuild the move row and quit probability of one source cell.
    pub fn rebuild_row(
        &mut self,
        freqs: &[f64],
        table: &TransitionTable,
        cell: usize,
        small: &mut Vec<(u32, f64)>,
        large: &mut Vec<(u32, f64)>,
    ) {
        debug_assert_eq!(freqs.len(), self.domain_len);
        let start = self.offsets[cell] as usize;
        let end = self.offsets[cell + 1] as usize;
        let weights = &freqs[start..end];
        let n = end - start;
        self.row_thresh.resize(n, 0);
        self.row_alias.resize(n, 0);
        build_alias_row(weights, &mut self.row_thresh, &mut self.row_alias, small, large);
        let targets = &table.neighbor_cells()[start..end];
        for i in 0..n {
            let accept = targets[i].0 as u128;
            let alias = targets[self.row_alias[i] as usize].0 as u128;
            self.packed[start + i] = self.row_thresh[i] as u128 | (accept << 32) | (alias << 64);
        }
        self.row_thresh.clear();
        self.row_alias.clear();
        let move_mass: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        let quit_mass = freqs[table.quit_index(CellId(cell as u32))].max(0.0);
        let denom = move_mass + quit_mass;
        self.quit_base[cell] = if denom > 0.0 { quit_mass / denom } else { 0.0 };
        self.quit_mass[cell] = quit_mass;
    }

    /// Recompute the normalized quitting distribution `Pr(q_j)` from the
    /// per-cell quit masses, in place (no allocation). Call once after a
    /// batch of [`Self::rebuild_row`] calls — the masses are per-cell but
    /// the normalizer is global, so renormalization is batched rather than
    /// repeated per row.
    pub fn rebuild_quit_dist(&mut self) {
        let total: f64 = self.quit_mass.iter().sum();
        if total <= 0.0 {
            let uniform = 1.0 / self.quit_dist.len() as f64;
            self.quit_dist.iter_mut().for_each(|p| *p = uniform);
        } else {
            for (d, &m) in self.quit_dist.iter_mut().zip(&self.quit_mass) {
                *d = m / total;
            }
        }
    }

    /// Rebuild the entering-distribution alias table. `small`/`large` are
    /// reusable scratch stacks, as in [`Self::rebuild_row`] — this runs on
    /// the per-timestamp model-refresh path, which must not allocate.
    pub fn rebuild_enter(
        &mut self,
        freqs: &[f64],
        table: &TransitionTable,
        small: &mut Vec<(u32, f64)>,
        large: &mut Vec<(u32, f64)>,
    ) {
        debug_assert_eq!(freqs.len(), self.domain_len);
        let start = table.num_moves();
        let cells = table.num_cells();
        self.enter.rebuild(&freqs[start..start + cells], small, large);
    }

    /// Domain length the cache was built for.
    pub fn domain_len(&self) -> usize {
        self.domain_len
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.quit_base.len()
    }

    /// O(1) draw of the next cell from `from`'s movement distribution
    /// (Eq. 6 conditioned on not quitting; uniform over neighbors when the
    /// row is uninformed).
    #[inline]
    pub fn sample_move<R: Rng + ?Sized>(&self, from: CellId, rng: &mut R) -> CellId {
        let start = self.offsets[from.index()] as usize;
        let end = self.offsets[from.index() + 1] as usize;
        let row = &self.packed[start..end];
        let x = rng.random::<u64>();
        // Lemire map of the high 32 bits onto the row: bias O(n / 2^32).
        let slot = (((x >> 32) * row.len() as u64) >> 32) as usize;
        let packed = row[slot];
        let cell =
            if (x as u32) < packed as u32 { (packed >> 32) as u32 } else { (packed >> 64) as u32 };
        CellId(cell)
    }

    /// O(1) length-reweighted termination probability (Eq. 8).
    #[inline]
    pub fn quit_prob(&self, from: CellId, len: u64, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        ((len as f64 / lambda) * self.quit_base[from.index()]).clamp(0.0, 1.0)
    }

    /// Cached base termination probability at `from`.
    #[inline]
    pub fn base_quit_prob(&self, from: CellId) -> f64 {
        self.quit_base[from.index()]
    }

    /// Cached quitting-distribution weight `Pr(q_j)` at `cell` (Eq. 6) —
    /// the O(1) replacement for `GlobalMobilityModel::quit_distribution`
    /// on the shrink path.
    #[inline]
    pub fn quit_weight(&self, cell: CellId) -> f64 {
        self.quit_dist[cell.index()]
    }

    /// O(1) draw from the entering distribution.
    #[inline]
    pub fn sample_enter<R: Rng + ?Sized>(&self, rng: &mut R) -> CellId {
        CellId(self.enter.sample(rng) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::Grid;

    /// Pearson chi-square statistic of `counts` against `probs`.
    fn chi_square(counts: &[u64], probs: &[f64], n: u64) -> f64 {
        counts
            .iter()
            .zip(probs)
            .filter(|&(_, &p)| p > 0.0)
            .map(|(&c, &p)| {
                let e = p * n as f64;
                (c as f64 - e).powi(2) / e
            })
            .sum()
    }

    #[test]
    fn alias_matches_expected_distribution() {
        let weights = [0.5, 0.0, 2.0, 1.0, 0.25, 3.25];
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000u64;
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        // Never draws a zero-weight category.
        assert_eq!(counts[1], 0);
        // 99.9th percentile of chi2 with 4 dof is 18.47.
        let chi = chi_square(&counts, &probs, n);
        assert!(chi < 18.47, "chi-square {chi} (counts {counts:?})");
    }

    #[test]
    fn alias_negative_and_zero_mass() {
        // Negative weights clamp to zero.
        let table = AliasTable::new(&[1.0, -5.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
        // All-zero mass degrades to uniform (stays in range).
        let table = AliasTable::new(&[0.0, 0.0, -1.0]);
        let mut counts = [0u64; 3];
        for _ in 0..30_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform fallback skewed: {counts:?}");
        }
    }

    #[test]
    fn alias_single_category() {
        let table = AliasTable::new(&[0.7]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn cache_rows_match_move_distributions() {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        // Deterministic pseudo-random, partly negative frequencies.
        let freqs: Vec<f64> =
            (0..table.len()).map(|i| ((i * 37 % 11) as f64 - 2.0) * 0.01).collect();
        let cache = SamplerCache::build(&freqs, &table);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 120_000u64;
        for cell in [grid.cell_at(0, 0), grid.cell_at(1, 2), grid.cell_at(3, 3)] {
            let block = table.move_block(cell);
            let weights: Vec<f64> = freqs[block.clone()].iter().map(|f| f.max(0.0)).collect();
            let total: f64 = weights.iter().sum();
            let probs: Vec<f64> = if total > 0.0 {
                weights.iter().map(|w| w / total).collect()
            } else {
                vec![1.0 / weights.len() as f64; weights.len()]
            };
            let targets = table.move_targets(cell);
            let mut counts = vec![0u64; targets.len()];
            for _ in 0..n {
                let to = cache.sample_move(cell, &mut rng);
                counts[targets.iter().position(|&c| c == to).unwrap()] += 1;
            }
            // 99.9th percentile of chi2 with 8 dof is 26.12; rows here have
            // at most 9 categories.
            let chi = chi_square(&counts, &probs, n);
            assert!(chi < 26.12, "cell {cell:?}: chi-square {chi}");
        }
    }

    #[test]
    fn cache_quit_probs_match_model_formula() {
        let grid = Grid::unit(3);
        let table = TransitionTable::new(&grid);
        let mut freqs = vec![0.0; table.len()];
        let c = grid.cell_at(1, 1);
        let block = table.move_block(c);
        freqs[block.start] = 0.3;
        freqs[table.quit_index(c)] = 0.1;
        let cache = SamplerCache::build(&freqs, &table);
        assert!((cache.base_quit_prob(c) - 0.25).abs() < 1e-12);
        assert!((cache.quit_prob(c, 5, 10.0) - 0.125).abs() < 1e-12);
        assert_eq!(cache.quit_prob(c, 1000, 1.0), 1.0);
        // Uninformed cell: quit probability zero.
        assert_eq!(cache.base_quit_prob(grid.cell_at(0, 0)), 0.0);
    }

    #[test]
    fn incremental_row_rebuild_matches_full_build() {
        let grid = Grid::unit(5);
        let table = TransitionTable::new(&grid);
        let mut freqs: Vec<f64> = (0..table.len()).map(|i| (i % 7) as f64 * 0.01).collect();
        let mut cache = SamplerCache::build(&freqs, &table);
        // Mutate a few cells' rows and the enter block.
        for idx in [0usize, 17, 40] {
            freqs[idx] += 0.5;
        }
        freqs[table.enter_index(grid.cell_at(2, 2))] = 2.0;
        let mut small = Vec::new();
        let mut large = Vec::new();
        for cell in [0usize, 1, 3] {
            cache.rebuild_row(&freqs, &table, cell, &mut small, &mut large);
        }
        cache.rebuild_enter(&freqs, &table, &mut small, &mut large);
        // Rebuilding only the three touched rows yields the same cache as a
        // full rebuild *for those rows*; untouched rows keep stale values by
        // design, so rebuild them too before comparing whole structs.
        for cell in 0..table.num_cells() {
            cache.rebuild_row(&freqs, &table, cell, &mut small, &mut large);
        }
        cache.rebuild_quit_dist();
        let full = SamplerCache::build(&freqs, &table);
        assert_eq!(cache, full);
    }

    #[test]
    fn cached_quit_dist_matches_model_distribution() {
        use crate::model::GlobalMobilityModel;
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let freqs: Vec<f64> =
            (0..table.len()).map(|i| ((i * 13 % 7) as f64 - 1.0) * 0.01).collect();
        let cache = SamplerCache::build(&freqs, &table);
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&freqs);
        let dist = model.quit_distribution(&table);
        for c in grid.cells() {
            assert!((cache.quit_weight(c) - dist[c.index()]).abs() < 1e-12, "{c:?}");
        }
        // All-zero quit mass: both degrade to the uniform distribution.
        let cache = SamplerCache::build(&vec![0.0; table.len()], &table);
        for c in grid.cells() {
            assert!((cache.quit_weight(c) - 1.0 / 16.0).abs() < 1e-12);
        }
    }
}
