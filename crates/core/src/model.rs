//! The global mobility model (§III-B).
//!
//! The curator maintains estimated frequencies `f_s` for every transition
//! state `s ∈ S` and derives the three distributions of Eq. 6:
//!
//! ```text
//! Pr(m_ij) = f_ij / (Σ_{c_x ∈ N(c_i)} f_ix + f_iQ)      movement
//! Pr(e_i)  = f_Ei / Σ_x f_Ex                              entering
//! Pr(q_j)  = f_jQ / Σ_x f_xQ                              quitting
//! ```
//!
//! Note the movement denominator deliberately includes the quit mass
//! `f_iQ`, so that a synthetic trajectory at cell `c_i` can terminate with
//! probability `f_iQ / (Σ f_ix + f_iQ)` — reweighted by stream length in
//! Eq. 8 (see [`GlobalMobilityModel::quit_prob`]).

use crate::sampler::SamplerCache;
use retrasyn_geo::{CellId, TransitionTable};
use std::sync::Arc;

/// Past this fraction of dirty states an incremental sampler rebuild stops
/// paying for itself and the model schedules a full rebuild instead.
const DIRTY_FULL_REBUILD_FRACTION: usize = 4;

/// Curator-side mobility model over a transition domain.
///
/// Frequencies are stored *signed*, exactly as the unbiased OUE estimator
/// produces them: zero-mean noise on the many empty transitions then
/// cancels inside the Eq. 6 sums instead of accumulating as a positive
/// bias floor. Clamping to `[0, ∞)` (free post-processing, Theorem 2)
/// happens only when probabilities are derived.
///
/// The model additionally owns a [`SamplerCache`] of per-cell alias tables
/// for O(1) synthesis draws. Mutations ([`Self::replace_all`],
/// [`Self::update_selected`]) record which states changed;
/// [`Self::rebuild_samplers`] then reconstructs only the affected rows —
/// a DMU step that refreshes 3% of transitions rebuilds ~3% of rows.
#[derive(Debug, Clone)]
pub struct GlobalMobilityModel {
    /// Estimated (signed) frequency per dense transition index.
    freqs: Vec<f64>,
    /// Alias-table sampler snapshot, shared with synthesis workers.
    cache: Option<Arc<SamplerCache>>,
    /// Every state changed since the last rebuild (initialization,
    /// `replace_all`, or dirty overflow).
    dirty_all: bool,
    /// Dense indices changed since the last rebuild (unsorted, may repeat).
    dirty: Vec<u32>,
    /// Reusable alias-build worklist (the per-timestamp refresh path must
    /// not allocate).
    scratch_small: Vec<(u32, f64)>,
    /// Reusable alias-build worklist.
    scratch_large: Vec<(u32, f64)>,
}

impl GlobalMobilityModel {
    /// An all-zero model over a domain of `len` states.
    pub fn new(len: usize) -> Self {
        GlobalMobilityModel {
            freqs: vec![0.0; len],
            cache: None,
            dirty_all: true,
            dirty: Vec::new(),
            scratch_small: Vec::new(),
            scratch_large: Vec::new(),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Current frequency estimates.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Frequency of one state.
    #[inline]
    pub fn freq(&self, idx: usize) -> f64 {
        self.freqs[idx]
    }

    /// Reset to the all-zero model in place, keeping every allocation (the
    /// frequency vector, dirty list and alias-build scratch); the sampler
    /// cache is invalidated and fully rebuilt on the next
    /// [`Self::rebuild_samplers`].
    pub fn reset(&mut self) {
        self.freqs.iter_mut().for_each(|f| *f = 0.0);
        self.dirty_all = true;
        self.dirty.clear();
    }

    /// Replace the whole model with fresh (signed) estimates. Used at
    /// initialization and by the AllUpdate ablation.
    pub fn replace_all(&mut self, estimates: &[f64]) {
        assert_eq!(estimates.len(), self.freqs.len(), "estimate length mismatch");
        self.freqs.copy_from_slice(estimates);
        self.dirty_all = true;
        self.dirty.clear();
    }

    /// Update only the selected states with fresh estimates (§III-C: "use
    /// Equation 6 to update their distribution and the remaining transitions
    /// are unchanged").
    pub fn update_selected(&mut self, selected: &[bool], estimates: &[f64]) {
        assert_eq!(selected.len(), self.freqs.len(), "selection length mismatch");
        assert_eq!(estimates.len(), self.freqs.len(), "estimate length mismatch");
        for i in 0..self.freqs.len() {
            if selected[i] {
                self.freqs[i] = estimates[i];
                if !self.dirty_all {
                    self.dirty.push(i as u32);
                }
            }
        }
        if self.dirty.len() > self.freqs.len() / DIRTY_FULL_REBUILD_FRACTION {
            self.dirty_all = true;
            self.dirty.clear();
        }
    }

    /// The current sampler snapshot, if it reflects the latest frequencies.
    /// `None` until [`Self::rebuild_samplers`] has run after the last
    /// mutation — callers then fall back to the O(k) scan paths.
    #[inline]
    pub fn sampler(&self) -> Option<&Arc<SamplerCache>> {
        if self.dirty_all || !self.dirty.is_empty() {
            return None;
        }
        self.cache.as_ref()
    }

    /// Bring the alias-table sampler cache in sync with the current
    /// frequencies, rebuilding only the rows whose states changed since the
    /// last call. Returns the number of move rows reconstructed (the whole
    /// grid counts as `num_cells`).
    pub fn rebuild_samplers(&mut self, table: &TransitionTable) -> usize {
        assert_eq!(table.len(), self.freqs.len(), "model / table domain mismatch");
        let cells = table.num_cells();
        let needs_full = self.dirty_all || self.cache.is_none();
        if needs_full {
            self.cache = Some(Arc::new(SamplerCache::build(&self.freqs, table)));
            self.dirty_all = false;
            self.dirty.clear();
            return cells;
        }
        if self.dirty.is_empty() {
            return 0;
        }
        // Translate dirty dense indices into move rows + the enter flag,
        // then dedup at ROW granularity (a cell's move and quit indices
        // both map to the same row — the cached base quit probability
        // depends on the quit state too).
        let moves = table.num_moves();
        let mut dirty = std::mem::take(&mut self.dirty);
        let mut enter_dirty = false;
        dirty.retain_mut(|idx| {
            let i = *idx as usize;
            if i < moves {
                *idx = table.move_source_of(i).index() as u32;
                true
            } else if i < moves + cells {
                enter_dirty = true;
                false
            } else {
                *idx = (i - moves - cells) as u32;
                true
            }
        });
        dirty.sort_unstable();
        dirty.dedup();
        let cache = Arc::make_mut(self.cache.as_mut().expect("cache exists on this path"));
        let small = &mut self.scratch_small;
        let large = &mut self.scratch_large;
        for &row in &dirty {
            cache.rebuild_row(&self.freqs, table, row as usize, small, large);
        }
        if !dirty.is_empty() {
            // A rebuilt row may have changed its cell's quit mass, and the
            // quitting distribution normalizes globally.
            cache.rebuild_quit_dist();
        }
        if enter_dirty {
            cache.rebuild_enter(&self.freqs, table, small, large);
        }
        let rebuilt = dirty.len();
        dirty.clear();
        self.dirty = dirty;
        rebuilt
    }

    /// Movement denominator of Eq. 6 for source cell `from`:
    /// `Σ_{c_x ∈ N(from)} f_{from,x} + f_{from,Q}` (clamped per term).
    pub fn move_denominator(&self, table: &TransitionTable, from: CellId) -> f64 {
        let moves: f64 = self.freqs[table.move_block(from)].iter().map(|f| f.max(0.0)).sum();
        moves + self.freqs[table.quit_index(from)].max(0.0)
    }

    /// Movement probabilities over `from`'s neighbor block (Eq. 6), parallel
    /// to [`TransitionTable::move_targets`]. Falls back to uniform over the
    /// neighbors when the denominator is zero (no information yet).
    pub fn move_probs(&self, table: &TransitionTable, from: CellId) -> Vec<f64> {
        let mut buf = Vec::new();
        self.move_probs_into(table, from, &mut buf);
        buf
    }

    /// Allocation-free variant of [`Self::move_probs`]: writes the
    /// probabilities into `buf` (cleared first). Used by the synthesis scan
    /// fallback so repeated calls reuse one buffer.
    pub fn move_probs_into(&self, table: &TransitionTable, from: CellId, buf: &mut Vec<f64>) {
        let block = table.move_block(from);
        let denom = self.move_denominator(table, from);
        buf.clear();
        if denom <= 0.0 {
            buf.extend(std::iter::repeat_n(1.0 / block.len() as f64, block.len()));
            return;
        }
        buf.extend(self.freqs[block].iter().map(|&f| f.max(0.0) / denom));
    }

    /// Base (length-independent) termination probability at `from`:
    /// `f_iQ / (Σ f_ix + f_iQ)` (§III-D). Zero when uninformed.
    pub fn base_quit_prob(&self, table: &TransitionTable, from: CellId) -> f64 {
        let denom = self.move_denominator(table, from);
        if denom <= 0.0 {
            return 0.0;
        }
        self.freqs[table.quit_index(from)].max(0.0) / denom
    }

    /// Length-reweighted termination probability (Eq. 8):
    /// `Pr(quit | c_i, ℓ) = (ℓ/λ) · f_iQ / (Σ f_ix + f_iQ)`, capped at 1.
    pub fn quit_prob(&self, table: &TransitionTable, from: CellId, len: u64, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        ((len as f64 / lambda) * self.base_quit_prob(table, from)).clamp(0.0, 1.0)
    }

    /// Entering distribution `Pr(e_i)` over all cells (Eq. 6); uniform when
    /// uninformed.
    pub fn enter_distribution(&self, table: &TransitionTable) -> Vec<f64> {
        let cells = table.num_cells();
        let start = table.num_moves();
        let mut dist: Vec<f64> =
            self.freqs[start..start + cells].iter().map(|f| f.max(0.0)).collect();
        let sum: f64 = dist.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / cells as f64; cells];
        }
        dist.iter_mut().for_each(|p| *p /= sum);
        dist
    }

    /// Quitting distribution `Pr(q_j)` over all cells (Eq. 6); uniform when
    /// uninformed.
    pub fn quit_distribution(&self, table: &TransitionTable) -> Vec<f64> {
        let cells = table.num_cells();
        let start = table.num_moves() + cells;
        let mut dist: Vec<f64> =
            self.freqs[start..start + cells].iter().map(|f| f.max(0.0)).collect();
        let sum: f64 = dist.iter().sum();
        if sum <= 0.0 {
            return vec![1.0 / cells as f64; cells];
        }
        dist.iter_mut().for_each(|p| *p /= sum);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, TransitionState};

    fn setup() -> (Grid, TransitionTable, GlobalMobilityModel) {
        let grid = Grid::unit(3);
        let table = TransitionTable::new(&grid);
        let model = GlobalMobilityModel::new(table.len());
        (grid, table, model)
    }

    #[test]
    fn empty_model_uniform_fallbacks() {
        let (grid, table, model) = setup();
        let c = grid.cell_at(1, 1);
        let probs = model.move_probs(&table, c);
        assert_eq!(probs.len(), 9);
        for p in &probs {
            assert!((p - 1.0 / 9.0).abs() < 1e-12);
        }
        assert_eq!(model.base_quit_prob(&table, c), 0.0);
        let e = model.enter_distribution(&table);
        assert!((e.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((e[0] - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_movement_with_quit_mass() {
        let (grid, table, mut model) = setup();
        let from = grid.cell_at(0, 0); // corner: 4 neighbors
        let mut est = vec![0.0; table.len()];
        // f(from->from)=0.1, f(from->right)=0.2, f(from,Q)=0.1.
        let to_self = table.index_of(TransitionState::Move { from, to: from }).unwrap();
        let right = grid.cell_at(1, 0);
        let to_right = table.index_of(TransitionState::Move { from, to: right }).unwrap();
        est[to_self] = 0.1;
        est[to_right] = 0.2;
        est[table.quit_index(from)] = 0.1;
        model.replace_all(&est);

        let denom = model.move_denominator(&table, from);
        assert!((denom - 0.4).abs() < 1e-12);
        let probs = model.move_probs(&table, from);
        let targets = table.move_targets(from);
        let self_pos = targets.iter().position(|&c| c == from).unwrap();
        let right_pos = targets.iter().position(|&c| c == right).unwrap();
        assert!((probs[self_pos] - 0.25).abs() < 1e-12);
        assert!((probs[right_pos] - 0.5).abs() < 1e-12);
        // Probabilities don't sum to 1: the quit mass takes the rest.
        assert!((probs.iter().sum::<f64>() - 0.75).abs() < 1e-12);
        assert!((model.base_quit_prob(&table, from) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn eq8_length_reweighting() {
        let (grid, table, mut model) = setup();
        let from = grid.cell_at(1, 1);
        let mut est = vec![0.0; table.len()];
        let stay = table.index_of(TransitionState::Move { from, to: from }).unwrap();
        est[stay] = 0.3;
        est[table.quit_index(from)] = 0.1;
        model.replace_all(&est);
        let base = model.base_quit_prob(&table, from);
        assert!((base - 0.25).abs() < 1e-12);
        // len = lambda -> exactly base.
        assert!((model.quit_prob(&table, from, 10, 10.0) - base).abs() < 1e-12);
        // Short stream -> reduced quitting.
        assert!((model.quit_prob(&table, from, 5, 10.0) - base / 2.0).abs() < 1e-12);
        // Very long stream -> capped at 1.
        assert_eq!(model.quit_prob(&table, from, 1000, 10.0), 1.0);
    }

    #[test]
    fn selected_update_leaves_rest() {
        let (_, table, mut model) = setup();
        let n = table.len();
        model.replace_all(&vec![0.5; n]);
        let mut selected = vec![false; n];
        selected[3] = true;
        selected[7] = true;
        let mut est = vec![0.9; n];
        est[7] = -0.2; // negative estimates are stored signed
        model.update_selected(&selected, &est);
        assert_eq!(model.freq(3), 0.9);
        assert_eq!(model.freq(7), -0.2);
        assert_eq!(model.freq(0), 0.5);
        assert_eq!(model.freq(n - 1), 0.5);
    }

    #[test]
    fn negative_estimates_clamp_at_distribution_time() {
        let (grid, table, mut model) = setup();
        let from = grid.cell_at(1, 1);
        let mut est = vec![0.0; table.len()];
        let stay = table.index_of(TransitionState::Move { from, to: from }).unwrap();
        let right = table.index_of(TransitionState::Move { from, to: grid.cell_at(2, 1) }).unwrap();
        est[stay] = 0.4;
        est[right] = -0.3; // noise artifact: must not contribute mass
        model.replace_all(&est);
        // Stored signed…
        assert_eq!(model.freq(right), -0.3);
        // …but clamped in every derived quantity.
        assert!((model.move_denominator(&table, from) - 0.4).abs() < 1e-12);
        let probs = model.move_probs(&table, from);
        let targets = table.move_targets(from);
        let right_pos = targets.iter().position(|&c| c == grid.cell_at(2, 1)).unwrap();
        assert_eq!(probs[right_pos], 0.0);
        let stay_pos = targets.iter().position(|&c| c == from).unwrap();
        assert!((probs[stay_pos] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_lifecycle_and_incremental_rebuild() {
        let (grid, table, mut model) = setup();
        // No cache until the first rebuild.
        assert!(model.sampler().is_none());
        let est: Vec<f64> = (0..table.len()).map(|i| (i % 5) as f64 * 0.01).collect();
        model.replace_all(&est);
        assert!(model.sampler().is_none());
        let rebuilt = model.rebuild_samplers(&table);
        assert_eq!(rebuilt, table.num_cells());
        assert!(model.sampler().is_some());

        // A selective update invalidates the cache until the next rebuild,
        // which only reconstructs the touched rows.
        let mut selected = vec![false; table.len()];
        let from = grid.cell_at(1, 1);
        let block = table.move_block(from);
        selected[block.start] = true;
        selected[table.quit_index(grid.cell_at(0, 0))] = true;
        let mut fresh = est.clone();
        fresh[block.start] = 0.9;
        model.update_selected(&selected, &fresh);
        assert!(model.sampler().is_none());
        let rebuilt = model.rebuild_samplers(&table);
        assert_eq!(rebuilt, 2, "one move row + one quit-dirtied row");
        assert!(model.sampler().is_some());
        // A clean model rebuilds nothing.
        assert_eq!(model.rebuild_samplers(&table), 0);

        // The cached sampler agrees with the scan distributions.
        let cache = model.sampler().unwrap().clone();
        for c in grid.cells() {
            assert!(
                (cache.base_quit_prob(c) - model.base_quit_prob(&table, c)).abs() < 1e-12,
                "quit prob mismatch at {c:?}"
            );
        }
    }

    #[test]
    fn enter_quit_distributions_normalize() {
        let (grid, table, mut model) = setup();
        let mut est = vec![0.0; table.len()];
        est[table.enter_index(grid.cell_at(0, 0))] = 0.3;
        est[table.enter_index(grid.cell_at(2, 2))] = 0.1;
        est[table.quit_index(grid.cell_at(1, 1))] = 0.7;
        model.replace_all(&est);
        let e = model.enter_distribution(&table);
        assert!((e[grid.cell_at(0, 0).index()] - 0.75).abs() < 1e-12);
        assert!((e[grid.cell_at(2, 2).index()] - 0.25).abs() < 1e-12);
        let q = model.quit_distribution(&table);
        assert!((q[grid.cell_at(1, 1).index()] - 1.0).abs() < 1e-12);
    }
}
