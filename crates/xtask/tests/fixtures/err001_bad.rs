// xtask: error-surface
// Fixture: unwrap/expect/panic! on a server surface must fire ERR001
// outside test code.

fn handle(input: Option<u64>, raw: &[u8]) -> u64 {
    let v = input.unwrap(); // <- ERR001
    let b: [u8; 4] = raw.try_into().expect("4 bytes"); // <- ERR001
    if v == 0 {
        panic!("zero is not a session id"); // <- ERR001
    }
    u32::from_le_bytes(b) as u64 + v
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::handle(Some(1), &[1, 0, 0, 0]).checked_add(1).unwrap(), 3);
    }
}
