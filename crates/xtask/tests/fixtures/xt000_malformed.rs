// Fixture: malformed directives must fire XT000 wherever they appear.

fn a() -> u64 {
    1 // xtask:allow(ERR001)
}

fn b() -> u64 {
    2 // xtask:allow(NOPE42, not a real lint)
}

fn c() -> u64 {
    3 // xtask:frobnicate
}
