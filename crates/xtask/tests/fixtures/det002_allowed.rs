// xtask: deterministic
// Fixture: an allowed entropy source must be clean.
use std::time::Instant;

fn step() -> Instant {
    Instant::now() // xtask:allow(DET002, telemetry only; never feeds the output stream)
}
