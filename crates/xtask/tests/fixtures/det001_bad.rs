// xtask: deterministic
// Fixture: RNG draw inside HashMap iteration must fire DET001.
use std::collections::HashMap;

fn resample(rng: &mut Rng) -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(1, 2);
    let mut acc = 0;
    for (user, _slots) in &counts {
        acc += user + rng.random_range(0..10); // <- DET001
    }
    acc
}
