// Fixture: `unsafe` without an adjacent safety justification must fire
// SAF001 — everywhere, test code included.

fn read_first(p: *const u8) -> u8 {
    unsafe { *p } // <- SAF001
}

#[cfg(test)]
mod tests {
    #[test]
    fn also_flagged_in_tests() {
        let x = 7u8;
        let v = unsafe { *(&x as *const u8) }; // <- SAF001 (tests too)
        assert_eq!(v, 7);
    }
}
