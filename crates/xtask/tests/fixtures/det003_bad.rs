// xtask: deterministic
// Fixture: unmarked swap_remove and retain-on-HashMap must fire DET003.
use std::collections::HashMap;

fn evict(active: &mut Vec<u64>, status: &mut HashMap<u64, bool>, pos: usize) {
    active.swap_remove(pos); // <- DET003
    status.retain(|_, alive| *alive); // <- DET003
    active.retain(|u| *u != 0); // Vec retain keeps order: no finding
}
