// xtask: error-surface
// Fixture: an ERR001 allow with a reason (documented panic contract)
// must be clean.

fn run(input: Option<u64>) -> u64 {
    match input {
        Some(v) => v,
        // xtask:allow(ERR001, panicking wrapper over try_run; message pinned by should_panic test)
        None => panic!("no input"),
    }
}
