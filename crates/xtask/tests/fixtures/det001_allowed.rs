// xtask: deterministic
// Fixture: the same draw with an allow directive must be clean, and a
// draw inside a loop over a *sorted* copy must not fire at all.
use std::collections::HashMap;

fn resample(rng: &mut Rng) -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(1, 2);
    let mut acc = 0;
    for (user, _slots) in &counts {
        // xtask:allow(DET001, draw is keyed by user id, not by visit order)
        acc += user + rng.random_range(0..10);
    }
    let mut sorted: Vec<u64> = counts.keys().copied().collect();
    sorted.sort_unstable();
    for user in &sorted {
        acc += user + rng.random_range(0..10); // ordered: no finding
    }
    acc
}
