// xtask: deterministic
// Fixture: an order(<reason>) marker documents sort-before-observe and
// must suppress DET003.
use std::collections::HashMap;

fn evict(active: &mut Vec<u64>, status: &mut HashMap<u64, bool>, pos: usize) {
    active.swap_remove(pos); // xtask:order(active_users() sorts before any draw observes this)
    // xtask:order(only the sorted key list is ever iterated downstream)
    status.retain(|_, alive| *alive);
}
