// xtask: deterministic
// Fixture: wall-clock and ambient entropy must fire DET002 (but not in
// test code).
use std::time::Instant;

fn step() -> u64 {
    let t0 = Instant::now(); // <- DET002
    let rng = thread_rng(); // <- DET002
    t0.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let _t = std::time::Instant::now(); // test code: no finding
    }
}
