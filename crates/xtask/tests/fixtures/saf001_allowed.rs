// Fixture: a SAFETY: comment within three lines (or on the same line)
// satisfies SAF001.

fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is non-null, aligned, and points
    // to a live byte for the duration of this call.
    unsafe { *p }
}

fn read_second(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: same contract as read_first.
}
