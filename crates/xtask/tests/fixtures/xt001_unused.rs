// Fixture: directives that suppress nothing must fire XT001.

fn quiet() -> u64 {
    // xtask:allow(ERR001, stale excuse for code that was since fixed)
    21 + 21
}

fn orderly(v: &mut Vec<u64>) {
    v.sort_unstable(); // xtask:order(nothing here destroys order any more)
}
