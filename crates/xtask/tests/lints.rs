//! Fixture-driven lint tests plus the workspace meta-test.
//!
//! Each lint has a `*_bad.rs` fixture asserting it fires (with the
//! expected count and lines) and a `*_allowed.rs` fixture asserting the
//! documented suppression silences it without tripping the unused-
//! directive meta lint. The final test runs the analyzer over the real
//! workspace with the real `xtask.toml` and requires a clean bill.

use std::path::{Path, PathBuf};
use xtask::config::Config;
use xtask::diag::Diagnostic;

fn fixture(name: &str) -> Vec<Diagnostic> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    // Fixtures opt into lint scopes via marker comments, so the default
    // config (no module lists) exercises the marker path too.
    xtask::check_file_source(name, &source, &Config::default())
}

fn ids(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.lint).collect()
}

fn lines_of(diags: &[Diagnostic], lint: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.lint == lint).map(|d| d.line).collect()
}

#[test]
fn det001_fires_on_rng_in_unordered_iteration() {
    let d = fixture("det001_bad.rs");
    assert_eq!(ids(&d), ["DET001"], "{d:#?}");
    assert_eq!(lines_of(&d, "DET001"), [10]);
    assert!(d[0].message.contains("random_range"));
}

#[test]
fn det001_allow_suppresses_and_sorted_loop_is_clean() {
    let d = fixture("det001_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn det002_fires_on_entropy_sources_outside_tests() {
    let d = fixture("det002_bad.rs");
    assert_eq!(ids(&d), ["DET002", "DET002"], "{d:#?}");
    assert_eq!(lines_of(&d, "DET002"), [7, 8]);
    assert!(d[0].message.contains("Instant::now"));
    assert!(d[1].message.contains("thread_rng"));
}

#[test]
fn det002_allow_suppresses() {
    let d = fixture("det002_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn det003_fires_on_unmarked_reordering() {
    let d = fixture("det003_bad.rs");
    assert_eq!(ids(&d), ["DET003", "DET003"], "{d:#?}");
    assert_eq!(lines_of(&d, "DET003"), [6, 7], "vec retain must not fire");
}

#[test]
fn det003_order_marker_suppresses() {
    let d = fixture("det003_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn saf001_fires_everywhere_including_tests() {
    let d = fixture("saf001_bad.rs");
    assert_eq!(ids(&d), ["SAF001", "SAF001"], "{d:#?}");
    assert_eq!(lines_of(&d, "SAF001"), [5, 13]);
}

#[test]
fn saf001_satisfied_by_adjacent_safety_comment() {
    let d = fixture("saf001_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn err001_fires_on_panicking_server_surface() {
    let d = fixture("err001_bad.rs");
    assert_eq!(ids(&d), ["ERR001", "ERR001", "ERR001"], "{d:#?}");
    assert_eq!(lines_of(&d, "ERR001"), [6, 7, 9], "test-module unwrap must not fire");
    assert!(d[0].message.contains(".unwrap()"));
    assert!(d[2].message.contains("panic!"));
}

#[test]
fn err001_allow_suppresses() {
    let d = fixture("err001_allowed.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn xt000_fires_on_malformed_directives() {
    let d = fixture("xt000_malformed.rs");
    assert_eq!(ids(&d), ["XT000", "XT000", "XT000"], "{d:#?}");
    assert!(d[0].message.contains("needs a reason"), "{}", d[0].message);
    assert!(d[1].message.contains("unknown lint id"), "{}", d[1].message);
    assert!(d[2].message.contains("unrecognized"), "{}", d[2].message);
}

#[test]
fn xt001_fires_on_unused_directives() {
    let d = fixture("xt001_unused.rs");
    assert_eq!(ids(&d), ["XT001", "XT001"], "{d:#?}");
    assert!(d[0].message.contains("allow(ERR001)"), "{}", d[0].message);
    assert!(d[1].message.contains("order marker"), "{}", d[1].message);
}

#[test]
fn diagnostics_render_rustc_style() {
    let d = fixture("err001_bad.rs");
    let rendered = d[0].to_string();
    assert!(rendered.contains("error[ERR001]:"), "{rendered}");
    assert!(rendered.contains("--> err001_bad.rs:6:"), "{rendered}");
    assert!(rendered.contains("^^^^^^"), "{rendered}");
}

/// The analyzer's own acceptance gate: the real workspace, checked with
/// the real config, is clean. This is what CI runs; keeping it as a
/// test means `cargo test` alone catches a regression.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    assert!(root.join("xtask.toml").is_file(), "workspace root not found at {}", root.display());
    let cfg = Config::load(&root.join("xtask.toml")).expect("parse xtask.toml");
    let report = xtask::check_workspace(&root, &cfg).expect("scan workspace");
    assert!(report.files > 30, "suspiciously few files scanned: {}", report.files);
    assert!(report.is_clean(), "workspace has findings:\n{}", report.render());
    sanity_check_config_paths(&root, &cfg);
}

/// Every path named in xtask.toml must exist — a renamed module would
/// otherwise silently fall out of enforcement.
fn sanity_check_config_paths(root: &Path, cfg: &Config) {
    for rel in cfg.det_modules.iter().chain(&cfg.err_surfaces) {
        assert!(root.join(rel).is_file(), "xtask.toml names a missing file: {rel}");
    }
}
