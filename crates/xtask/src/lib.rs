//! `xtask` — the in-repo determinism & safety analyzer.
//!
//! A dependency-free static analyzer enforcing the invariants this
//! workspace's correctness argument rests on: bit-level determinism of
//! the collection/synthesis pipeline (blessed snapshots, sharded
//! bit-identity), justified `unsafe`, and panic-free server surfaces.
//! Rustc and clippy cannot see these — they are *repo* invariants, not
//! language invariants — so the analyzer encodes them as lints with
//! stable ids (see [`lints::LINTS`]).
//!
//! Run it as `cargo run -p xtask -- check`. It lexes every tracked
//! `.rs` file (a real lexer — comments, raw strings, and doc comments
//! are understood, so string/comment contents never trigger lints),
//! applies the lint suite per the `xtask.toml` config, and exits
//! non-zero on any finding. Suppressions are inline
//! `xtask:allow(ID, reason)` comments; stale suppressions are
//! themselves findings (XT001).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod scan;

use config::Config;
use diag::{Diagnostic, Report};
use scan::FileScan;
use std::io;
use std::path::{Path, PathBuf};

/// Lint one file's source text. `rel_path` must be root-relative with
/// forward slashes (it is matched against the config's module lists).
pub fn check_file_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let known = lints::known_ids();
    let scan = FileScan::new(rel_path, source, &known);
    let mut out = Vec::new();
    lints::check_scan(&scan, cfg, &mut out);
    out
}

/// Lint every `.rs` file under `root` (skipping `target`,
/// dot-directories, and the config's `skip` prefixes), returning the
/// sorted findings.
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, cfg, &mut files)?;
    // Deterministic scan order regardless of filesystem enumeration.
    files.sort();
    let mut report = Report::default();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        report.errors.extend(check_file_source(rel, &source, cfg));
        report.files += 1;
    }
    report.finish();
    Ok(report)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if cfg.is_skipped(&rel) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
