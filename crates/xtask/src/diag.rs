//! Rustc-style diagnostics with stable lint ids.

use std::fmt;

/// One finding, anchored to a source span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable lint id (`DET001`, …, `XT000`/`XT001` for the meta lints).
    pub lint: &'static str,
    /// Root-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Width of the underlined span in bytes (≥ 1).
    pub width: u32,
    /// One-line description of the violation.
    pub message: String,
    /// The offending source line, for rendering.
    pub line_text: String,
    /// Optional `= help:` trailer (usually the suppression recipe).
    pub help: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.lint, self.message)?;
        let gutter = digits(self.line);
        writeln!(f, "{:gutter$} --> {}:{}:{}", "", self.path, self.line, self.col)?;
        writeln!(f, "{:gutter$} |", "")?;
        writeln!(f, "{} | {}", self.line, self.line_text)?;
        let pad = self.col.max(1) as usize - 1;
        let carets = "^".repeat(self.width.max(1) as usize);
        writeln!(f, "{:gutter$} | {:pad$}{carets}", "", "")?;
        if let Some(help) = &self.help {
            writeln!(f, "{:gutter$} = help: {help}", "")?;
        }
        Ok(())
    }
}

fn digits(n: u32) -> usize {
    (n.max(1)).ilog10() as usize + 1
}

/// The outcome of a full `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Gating findings, sorted by (path, line, col, lint).
    pub errors: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Sort findings into stable presentation order.
    pub fn finish(&mut self) {
        self.errors.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
        });
    }

    /// True when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Render every finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.errors {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary (`xtask check: …`).
    pub fn summary(&self) -> String {
        if self.errors.is_empty() {
            return format!("xtask check: {} files scanned, 0 findings", self.files);
        }
        // Count findings per lint id, in id order.
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for d in &self.errors {
            match counts.iter_mut().find(|(id, _)| *id == d.lint) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.lint, 1)),
            }
        }
        counts.sort_unstable();
        let breakdown: Vec<String> = counts.iter().map(|(id, n)| format!("{id}: {n}")).collect();
        format!(
            "xtask check: {} files scanned, {} findings ({})",
            self.files,
            self.errors.len(),
            breakdown.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            path: path.to_string(),
            line,
            col: 5,
            width: 6,
            message: "m".into(),
            line_text: "    foobar();".into(),
            help: None,
        }
    }

    #[test]
    fn rendering_is_rustc_shaped() {
        let d = diag("DET002", "crates/core/src/engine.rs", 373);
        let s = d.to_string();
        assert!(s.contains("error[DET002]: m"));
        assert!(s.contains("--> crates/core/src/engine.rs:373:5"));
        assert!(s.contains("^^^^^^"));
    }

    #[test]
    fn report_sorts_and_summarizes() {
        let mut r = Report { files: 3, ..Default::default() };
        r.errors.push(diag("ERR001", "b.rs", 9));
        r.errors.push(diag("DET001", "a.rs", 2));
        r.errors.push(diag("ERR001", "a.rs", 1));
        r.finish();
        assert_eq!(r.errors[0].path, "a.rs");
        assert_eq!(r.errors[0].line, 1);
        assert_eq!(r.summary(), "xtask check: 3 files scanned, 3 findings (DET001: 1, ERR001: 2)");
        assert!(!r.is_clean());
    }
}
