//! Analyzer configuration, loaded from `xtask.toml` at the workspace
//! root.
//!
//! The parser understands exactly the TOML subset the config needs —
//! `[section]` headers, `key = "string"`, `key = true/false`, and
//! (possibly multi-line) `key = ["a", "b"]` string arrays, with `#`
//! comments — because the analyzer must not pull in registry
//! dependencies. Unknown sections or keys are hard errors so a typo'd
//! config cannot silently disable a lint.

use std::fmt;
use std::path::Path;

/// Analyzer configuration. See `xtask.toml` for the workspace instance
/// and field-by-field commentary.
#[derive(Debug, Clone)]
pub struct Config {
    /// Root-relative path prefixes to skip entirely (fixture corpora,
    /// build output). `target` directories and dot-directories are
    /// always skipped.
    pub skip: Vec<String>,
    /// Root-relative files subject to the DET lints. Files carrying an
    /// `xtask: deterministic` marker comment are included as well.
    pub det_modules: Vec<String>,
    /// Root-relative files subject to ERR001 (server-facing fallible
    /// surfaces). Files carrying an `xtask: error-surface` marker
    /// comment are included as well.
    pub err_surfaces: Vec<String>,
    /// Method names whose calls count as RNG draws for DET001.
    pub rng_methods: Vec<String>,
    /// Type names treated as unordered containers for DET001/DET003.
    pub unordered_types: Vec<String>,
    /// Forbidden wall-clock / ambient-entropy paths for DET002, written
    /// as `Type::method` or a bare function name.
    pub entropy_sources: Vec<String>,
    /// Method names that reorder state for DET003 (`swap_remove`-like).
    pub order_methods: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: Vec::new(),
            det_modules: Vec::new(),
            err_surfaces: Vec::new(),
            rng_methods: [
                "random",
                "random_range",
                "random_bool",
                "next_u32",
                "next_u64",
                "fill_bytes",
                "shuffle",
                "sample_from",
                "sample_standard",
                "gen_range",
                "gen_bool",
            ]
            .map(str::to_string)
            .to_vec(),
            unordered_types: ["HashMap", "HashSet"].map(str::to_string).to_vec(),
            entropy_sources: [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
                "OsRng",
            ]
            .map(str::to_string)
            .to_vec(),
            order_methods: ["swap_remove", "swap_remove_into"].map(str::to_string).to_vec(),
        }
    }
}

/// A configuration load/parse failure.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the failure (0 when not line-specific).
    pub line: usize,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "xtask.toml:{}: {}", self.line, self.detail)
        } else {
            write!(f, "xtask.toml: {}", self.detail)
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Load configuration from a file, layering it over the defaults.
    /// List-valued keys *replace* the default lists.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError { line: 0, detail: format!("{}: {e}", path.display()) })?;
        Self::parse(&text)
    }

    /// Parse configuration text (see [`Config::load`]).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: lineno,
                        detail: "unclosed section header".into(),
                    });
                };
                section = name.trim().to_string();
                if !matches!(section.as_str(), "paths" | "determinism" | "errors") {
                    return Err(ConfigError {
                        line: lineno,
                        detail: format!("unknown section [{section}]"),
                    });
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: lineno,
                    detail: format!("expected key = value, got {line:?}"),
                });
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !array_closed(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError {
                        line: lineno,
                        detail: format!("unterminated array for key {key}"),
                    });
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let slot: &mut Vec<String> = match (section.as_str(), key.as_str()) {
                ("paths", "skip") => &mut cfg.skip,
                ("determinism", "modules") => &mut cfg.det_modules,
                ("determinism", "rng_methods") => &mut cfg.rng_methods,
                ("determinism", "unordered_types") => &mut cfg.unordered_types,
                ("determinism", "entropy_sources") => &mut cfg.entropy_sources,
                ("determinism", "order_methods") => &mut cfg.order_methods,
                ("errors", "surfaces") => &mut cfg.err_surfaces,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        detail: format!("unknown key {key:?} in section [{section}]"),
                    })
                }
            };
            *slot = parse_string_array(&value)
                .map_err(|detail| ConfigError { line: lineno, detail })?;
        }
        Ok(cfg)
    }

    /// Whether a root-relative path (forward slashes) is skipped.
    pub fn is_skipped(&self, rel: &str) -> bool {
        self.skip.iter().any(|p| rel == p || rel.starts_with(&format!("{p}/")))
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn array_closed(value: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    let b = value.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth == 0
}

/// Parse `["a", "b"]` into its strings (empty arrays allowed).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let Some(body) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(format!("expected a [\"…\"] string array, got {v:?}"));
    };
    let mut out = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b',' => i += 1,
            b'"' => {
                let mut s = String::new();
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        i += 1;
                    }
                    s.push(b[i] as char);
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated string in array".into());
                }
                i += 1;
                out.push(s);
            }
            other => return Err(format!("unexpected {:?} in array", other as char)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            "# comment\n[paths]\nskip = [\"target\", \"crates/xtask/tests/fixtures\"]\n\n\
             [determinism]\nmodules = [\n  \"a.rs\", # trailing\n  \"b.rs\",\n]\n\
             [errors]\nsurfaces = [\"c.rs\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.skip, vec!["target", "crates/xtask/tests/fixtures"]);
        assert_eq!(cfg.det_modules, vec!["a.rs", "b.rs"]);
        assert_eq!(cfg.err_surfaces, vec!["c.rs"]);
        // Untouched keys keep their defaults.
        assert!(cfg.rng_methods.contains(&"random_range".to_string()));
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(Config::parse("[paths]\nskpi = []\n").is_err());
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[determinism]\nmodules = \"not-an-array\"\n").is_err());
    }

    #[test]
    fn skip_prefix_matching() {
        let cfg = Config {
            skip: vec!["target".into(), "crates/xtask/tests/fixtures".into()],
            ..Config::default()
        };
        assert!(cfg.is_skipped("target/debug/foo.rs"));
        assert!(cfg.is_skipped("crates/xtask/tests/fixtures/det001_bad.rs"));
        assert!(!cfg.is_skipped("crates/xtask/tests/lints.rs"));
        assert!(!cfg.is_skipped("targets/foo.rs"));
    }

    #[test]
    fn comments_respect_strings() {
        let cfg = Config::parse("[paths]\nskip = [\"has#hash\"] # real comment\n").unwrap();
        assert_eq!(cfg.skip, vec!["has#hash"]);
    }
}
