//! The repo-specific lint suite.
//!
//! Every lint has a stable id, fires on token-level patterns (no type
//! information — see each lint's doc for its exact heuristic and known
//! blind spots), and is suppressed by an `allow` directive on the
//! finding's line (or an own-line directive immediately above). DET003
//! additionally accepts the semantic `order(<reason>)` marker. Two meta
//! lints keep the annotations themselves honest: XT000 (malformed
//! directive) and XT001 (directive that suppressed nothing).

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::scan::{match_close, FileScan};

/// Static description of one lint, for `xtask lints` and the README
/// table.
pub struct LintInfo {
    /// Stable id.
    pub id: &'static str,
    /// One-line summary of what fires.
    pub summary: &'static str,
    /// The repo invariant the lint protects.
    pub invariant: &'static str,
}

/// Every lint the analyzer knows, in id order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "DET001",
        summary: "RNG draw inside iteration over an unordered container",
        invariant: "the RNG stream consumed at fixed (seed, threads) is bit-identical across \
                    runs; HashMap/HashSet iteration order would splice platform hash noise \
                    into the draw sequence",
    },
    LintInfo {
        id: "DET002",
        summary: "wall-clock or ambient-entropy source in a deterministic module",
        invariant: "deterministic modules derive every bit from (seed, input); Instant/\
                    SystemTime/thread_rng would make replay and blessed snapshots flaky",
    },
    LintInfo {
        id: "DET003",
        summary: "order-destroying mutation (swap_remove/retain-on-unordered) without an \
                  order(<reason>) marker",
        invariant: "state observed by sampling or release is sorted (or provably \
                    order-independent) before observation; swap_remove reorders silently",
    },
    LintInfo {
        id: "SAF001",
        summary: "`unsafe` without an adjacent `// SAFETY:` justification",
        invariant: "every unsafe block documents the invariant making it sound; all workspace \
                    crates currently #![forbid(unsafe_code)], so this guards future opt-outs",
    },
    LintInfo {
        id: "ERR001",
        summary: "unwrap/expect/panic! on a server-facing fallible surface (non-test code)",
        invariant: "session/ingest/supervise/WAL surfaces return typed errors; a panic in them \
                    can kill a server thread on malformed client input",
    },
    LintInfo {
        id: "XT000",
        summary: "malformed xtask directive (bad syntax, missing reason, unknown lint id)",
        invariant: "suppressions are auditable: every allow names a real lint and a reason",
    },
    LintInfo {
        id: "XT001",
        summary: "directive that suppressed nothing",
        invariant: "annotations cannot rot: a stale allow/order marker fails the build so it \
                    is removed alongside the code it excused",
    },
];

/// The valid ids for `allow` directives.
pub fn known_ids() -> Vec<&'static str> {
    LINTS.iter().map(|l| l.id).collect()
}

/// Run every applicable lint over one scanned file.
pub fn check_scan(scan: &FileScan<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let deterministic = scan.det_marker || cfg.det_modules.iter().any(|m| m == &scan.rel_path);
    let err_surface = scan.err_marker || cfg.err_surfaces.iter().any(|m| m == &scan.rel_path);

    if deterministic {
        det001(scan, cfg, out);
        det002(scan, cfg, out);
        det003(scan, cfg, out);
    }
    saf001(scan, out);
    if err_surface {
        err001(scan, out);
    }

    for m in &scan.malformed {
        out.push(diag_line(
            scan,
            "XT000",
            m.line,
            format!("malformed directive: {}", m.detail),
            None,
        ));
    }
    for d in scan.allows.iter().chain(&scan.orders) {
        if !d.used.get() {
            let what = if d.id == "ORDER" {
                "order marker".to_string()
            } else {
                format!("allow({})", d.id)
            };
            out.push(diag_line(
                scan,
                "XT001",
                d.line,
                format!("{what} suppresses nothing on its line or the line below"),
                Some("remove the stale directive, or move it onto the finding it excuses".into()),
            ));
        }
    }
}

fn diag_at(
    scan: &FileScan<'_>,
    lint: &'static str,
    t: &Tok<'_>,
    message: String,
    help: Option<String>,
) -> Diagnostic {
    Diagnostic {
        lint,
        path: scan.rel_path.clone(),
        line: t.line,
        col: t.col,
        width: t.text.len() as u32,
        message,
        line_text: scan.lines.get(t.line as usize - 1).unwrap_or(&"").to_string(),
        help,
    }
}

fn diag_line(
    scan: &FileScan<'_>,
    lint: &'static str,
    line: u32,
    message: String,
    help: Option<String>,
) -> Diagnostic {
    Diagnostic {
        lint,
        path: scan.rel_path.clone(),
        line,
        col: 1,
        width: 1,
        message,
        line_text: scan.lines.get(line as usize - 1).unwrap_or(&"").to_string(),
        help,
    }
}

fn allow_help(id: &str) -> Option<String> {
    Some(format!("suppress with an {id} allow directive and a reason if this cannot affect observable output"))
}

/// Collect the names of bindings/fields whose declared type (or
/// constructor) is an unordered container: `name: HashMap<…>`,
/// `name = HashSet::new()`, `type Alias = HashMap<…>`, through
/// reference/`mut` sigils and `std::collections::` paths.
fn unordered_names(scan: &FileScan<'_>, cfg: &Config) -> Vec<String> {
    let toks = &scan.toks;
    let mut names = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !cfg.unordered_types.iter().any(|u| u == t.text) {
            continue;
        }
        // Walk left over `path::segments::` to the start of the path.
        let mut k = j;
        while k >= 3
            && toks[k - 1].text == ":"
            && toks[k - 2].text == ":"
            && toks[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        // Walk left over `&`, `mut`, and lifetimes.
        let mut m = k;
        while m >= 1
            && (toks[m - 1].text == "&"
                || toks[m - 1].text == "mut"
                || toks[m - 1].kind == TokKind::Lifetime)
        {
            m -= 1;
        }
        if m >= 2 && toks[m - 2].kind == TokKind::Ident {
            let sep = toks[m - 1].text;
            let double_colon = sep == ":" && m >= 3 && toks[m - 3].text == ":";
            if (sep == ":" && !double_colon) || sep == "=" {
                let name = toks[m - 2].text.to_string();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Token-index ranges of `for`-loop bodies whose iterated expression
/// mentions an unordered container.
fn tainted_loop_bodies(scan: &FileScan<'_>, cfg: &Config, names: &[String]) -> Vec<(usize, usize)> {
    let toks = &scan.toks;
    let mut regions = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "for" {
            continue;
        }
        // Find the body `{`: first `{` at paren/bracket depth 0 (struct
        // literals are not allowed bare in loop headers; braces inside
        // call parentheses are at depth > 0).
        let mut depth = 0i32;
        let mut open = None;
        let mut has_in = false;
        let mut in_idx = None;
        for (j, h) in toks.iter().enumerate().skip(i + 1) {
            match h.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break, // not a loop after all
                "in" if depth == 0 && h.kind == TokKind::Ident => {
                    has_in = true;
                    in_idx = Some(j);
                }
                _ => {}
            }
        }
        // `impl Trait for Type` and `for<'a>` bounds have no `in`.
        let (Some(open), true, Some(in_idx)) = (open, has_in, in_idx) else { continue };
        let header = &toks[in_idx + 1..open];
        let tainted = header.iter().any(|h| {
            h.kind == TokKind::Ident
                && (names.iter().any(|n| n == h.text)
                    || cfg.unordered_types.iter().any(|u| u == h.text))
        });
        if !tainted {
            continue;
        }
        if let Some(close) = match_close(toks, open, "{", "}") {
            regions.push((open, close));
        }
    }
    regions
}

/// DET001 — RNG draws whose order depends on unordered-container
/// iteration. Heuristic: a configured RNG-draw method called inside the
/// body of a `for` loop iterating an identifier declared as
/// `HashMap`/`HashSet` (or a direct `HashMap`/`HashSet` expression).
/// Closure-based iteration (`.iter().for_each(…)`) is a known blind
/// spot; the second enforcement layer (clippy `disallowed-types`) bans
/// the container outright in `crates/core`.
fn det001(scan: &FileScan<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let names = unordered_names(scan, cfg);
    let regions = tainted_loop_bodies(scan, cfg, &names);
    if regions.is_empty() {
        return;
    }
    let toks = &scan.toks;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !cfg.rng_methods.iter().any(|m| m == t.text)
            || j == 0
            || toks[j - 1].text != "."
            || toks.get(j + 1).map(|n| n.text) != Some("(")
        {
            continue;
        }
        if !regions.iter().any(|&(a, b)| j > a && j < b) {
            continue;
        }
        if scan.is_test_line(t.line) || scan.try_allow("DET001", t.line) {
            continue;
        }
        out.push(diag_at(
            scan,
            "DET001",
            t,
            format!(
                "RNG draw `{}` inside iteration over an unordered container: the draw order \
                 would follow HashMap/HashSet hash order, not a deterministic order",
                t.text
            ),
            Some(
                "iterate a sorted copy (or a BTreeMap/Vec) so the draw sequence is a pure \
                  function of (seed, input)"
                    .into(),
            ),
        ));
    }
}

/// DET002 — wall-clock / ambient-entropy sources in deterministic
/// modules: any configured `Type::method` path or bare function name.
fn det002(scan: &FileScan<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &scan.toks;
    for entry in &cfg.entropy_sources {
        let segs: Vec<&str> = entry.split("::").collect();
        for (j, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != segs[0] {
                continue;
            }
            // Match the remaining `::segment`s.
            let mut k = j;
            let mut ok = true;
            for seg in &segs[1..] {
                if toks.get(k + 1).map(|x| x.text) == Some(":")
                    && toks.get(k + 2).map(|x| x.text) == Some(":")
                    && toks.get(k + 3).map(|x| (x.kind, x.text)) == Some((TokKind::Ident, *seg))
                {
                    k += 3;
                } else {
                    ok = false;
                    break;
                }
            }
            if !ok || scan.is_test_line(t.line) || scan.try_allow("DET002", t.line) {
                continue;
            }
            out.push(diag_at(
                scan,
                "DET002",
                t,
                format!(
                    "wall-clock/entropy source `{entry}` in a deterministic module: output \
                     would depend on when (or where) the code runs, not only on (seed, input)"
                ),
                allow_help("DET002"),
            ));
        }
    }
}

/// DET003 — order-destroying mutations without a sort-before-observe
/// marker: configured `swap_remove`-style methods anywhere, plus
/// `retain`/`drain` on receivers declared as unordered containers.
fn det003(scan: &FileScan<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let names = unordered_names(scan, cfg);
    let toks = &scan.toks;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || j == 0
            || toks[j - 1].text != "."
            || toks.get(j + 1).map(|n| n.text) != Some("(")
        {
            continue;
        }
        let always = cfg.order_methods.iter().any(|m| m == t.text);
        let on_unordered = matches!(t.text, "retain" | "drain")
            && j >= 2
            && toks[j - 2].kind == TokKind::Ident
            && names.iter().any(|n| n == toks[j - 2].text);
        if !always && !on_unordered {
            continue;
        }
        if scan.is_test_line(t.line)
            || scan.try_order_marker(t.line)
            || scan.try_allow("DET003", t.line)
        {
            continue;
        }
        let what = if on_unordered {
            format!("`{}` over an unordered container visits entries in hash order", t.text)
        } else {
            format!("`{}` reorders the receiver in place", t.text)
        };
        out.push(diag_at(
            scan,
            "DET003",
            t,
            format!("{what}, and nothing marks where order is restored before it is observed"),
            Some(
                "add an order(<where the sort-before-observe happens>) marker on this line \
                  if downstream reads are sorted or order-independent"
                    .into(),
            ),
        ));
    }
}

/// SAF001 — `unsafe` without an adjacent `// SAFETY:` comment (same
/// line, or a comment ending within 3 lines above). Applies to every
/// file, tests included: unsound test helpers corrupt evidence too.
fn saf001(scan: &FileScan<'_>, out: &mut Vec<Diagnostic>) {
    for t in &scan.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if scan.has_safety_comment(t.line, 3) || scan.try_allow("SAF001", t.line) {
            continue;
        }
        out.push(diag_at(
            scan,
            "SAF001",
            t,
            "`unsafe` without an adjacent `// SAFETY:` comment justifying why the contract \
             holds"
                .to_string(),
            Some(
                "write the invariant that makes this sound; if it cannot be written, the \
                  block is not sound"
                    .into(),
            ),
        ));
    }
}

/// ERR001 — panicking operations on server-facing fallible surfaces,
/// outside test code: `.unwrap()`, `.expect(…)`, and the `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` macros.
fn err001(scan: &FileScan<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &scan.toks;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = matches!(t.text, "unwrap" | "expect")
            && j >= 1
            && toks[j - 1].text == "."
            && toks.get(j + 1).map(|n| n.text) == Some("(");
        let mac = matches!(t.text, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(j + 1).map(|n| n.text) == Some("!");
        if !method && !mac {
            continue;
        }
        if scan.is_test_line(t.line) || scan.try_allow("ERR001", t.line) {
            continue;
        }
        let display = if mac { format!("{}!", t.text) } else { format!(".{}()", t.text) };
        out.push(diag_at(
            scan,
            "ERR001",
            t,
            format!(
                "`{display}` on a server-facing fallible surface: a malformed input or I/O \
                 fault here panics instead of returning a typed SessionError/WalError"
            ),
            Some(
                "return the typed error (the try_* surface), or add an ERR001 allow \
                  directive if this panic is a documented, test-pinned API contract"
                    .into(),
            ),
        ));
    }
}
