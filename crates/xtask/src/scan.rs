//! Per-file analysis context: lexed tokens plus the comment-borne
//! metadata the lints consume — suppression directives, order markers,
//! module markers, `SAFETY:` justifications, and `#[cfg(test)]` /
//! `#[test]` spans.
//!
//! ## Directives
//!
//! Directives live in *plain* comments (doc comments are ignored, so
//! documentation may quote directive syntax freely):
//!
//! - `xtask:allow(LINT_ID, reason)` — suppress findings of `LINT_ID` on
//!   the same line, or on the next line when the comment stands alone.
//!   The reason is mandatory; an allow that suppresses nothing is
//!   itself reported (XT001) so annotations cannot rot.
//! - `xtask:order(reason)` — the DET003 sort-before-observe marker:
//!   asserts the reordered state is sorted (or otherwise canonicalized)
//!   before any order-sensitive observation.
//! - `xtask: deterministic` — marks the file as a deterministic module
//!   (equivalent to listing it in `[determinism] modules`).
//! - `xtask: error-surface` — marks the file as an ERR001 surface
//!   (equivalent to listing it in `[errors] surfaces`).

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::cell::Cell;

/// A parsed `allow` or `order` directive.
#[derive(Debug)]
pub struct Directive {
    /// Lint id for allows; `"ORDER"` for order markers.
    pub id: String,
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Whether the comment stands alone on its line (then it also
    /// covers the next line).
    pub own_line: bool,
    /// Set when a finding consumed this directive.
    pub used: Cell<bool>,
}

impl Directive {
    /// Whether this directive covers a finding on `line`.
    pub fn covers(&self, line: u32) -> bool {
        self.line == line || (self.own_line && self.line + 1 == line)
    }
}

/// A malformed directive (bad syntax, missing reason, unknown lint id).
#[derive(Debug)]
pub struct Malformed {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong.
    pub detail: String,
}

/// Everything the lints need to know about one file.
pub struct FileScan<'a> {
    /// Root-relative path with forward slashes.
    pub rel_path: String,
    /// The file's lines (for diagnostics rendering).
    pub lines: Vec<&'a str>,
    /// Code tokens.
    pub toks: Vec<Tok<'a>>,
    /// All comments.
    pub comments: Vec<Comment<'a>>,
    /// `in_test[line - 1]` is true when the line sits inside a
    /// `#[cfg(test)]` item or `#[test]` function.
    pub in_test: Vec<bool>,
    /// Suppression directives (`xtask:allow`).
    pub allows: Vec<Directive>,
    /// Order markers (`xtask:order`).
    pub orders: Vec<Directive>,
    /// Malformed directives.
    pub malformed: Vec<Malformed>,
    /// File carries the `xtask: deterministic` marker.
    pub det_marker: bool,
    /// File carries the `xtask: error-surface` marker.
    pub err_marker: bool,
}

impl<'a> FileScan<'a> {
    /// Lex and annotate one file. `known_lints` is the set of valid ids
    /// for `allow` directives (typos are malformed, not silent).
    pub fn new(rel_path: &str, source: &'a str, known_lints: &[&str]) -> Self {
        let lexed = lex(source);
        let lines: Vec<&str> = source.lines().collect();
        let mut scan = FileScan {
            rel_path: rel_path.to_string(),
            in_test: vec![false; lines.len()],
            lines,
            toks: lexed.toks,
            comments: lexed.comments,
            allows: Vec::new(),
            orders: Vec::new(),
            malformed: Vec::new(),
            det_marker: false,
            err_marker: false,
        };
        scan.parse_directives(known_lints);
        scan.mark_test_spans();
        scan
    }

    /// True when `line` (1-based) is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.in_test.get(line as usize - 1).copied().unwrap_or(false)
    }

    /// Consume a matching allow for (`lint`, `line`); true if found.
    pub fn try_allow(&self, lint: &str, line: u32) -> bool {
        for a in &self.allows {
            if a.id == lint && a.covers(line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    /// Consume a matching order marker for `line`; true if found.
    pub fn try_order_marker(&self, line: u32) -> bool {
        for o in &self.orders {
            if o.covers(line) {
                o.used.set(true);
                return true;
            }
        }
        false
    }

    /// Whether a (non-doc or doc) comment containing `SAFETY:` ends
    /// within `window` lines above `line`, or starts on `line` itself.
    pub fn has_safety_comment(&self, line: u32, window: u32) -> bool {
        self.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && (c.line == line || (c.end_line < line && c.end_line + window >= line))
        })
    }

    fn parse_directives(&mut self, known_lints: &[&str]) {
        for c in &self.comments {
            if c.doc {
                continue;
            }
            let body = c.body();
            let mut rest = body;
            while let Some(pos) = rest.find("xtask:") {
                let after = &rest[pos + "xtask:".len()..];
                let after_trim = after.trim_start();
                if let Some(args) = after_trim.strip_prefix("allow(") {
                    match parse_paren_args(args) {
                        Ok((id, reason)) => {
                            if !known_lints.contains(&id.as_str()) {
                                self.malformed.push(Malformed {
                                    line: c.line,
                                    detail: format!("unknown lint id {id:?} in allow directive"),
                                });
                            } else if reason.is_empty() {
                                self.malformed.push(Malformed {
                                    line: c.line,
                                    detail: format!("allow({id}) is missing its reason"),
                                });
                            } else {
                                self.allows.push(Directive {
                                    id,
                                    line: c.line,
                                    own_line: c.own_line,
                                    used: Cell::new(false),
                                });
                            }
                        }
                        Err(detail) => self.malformed.push(Malformed { line: c.line, detail }),
                    }
                } else if let Some(args) = after_trim.strip_prefix("order(") {
                    match parse_order_reason(args) {
                        Ok(()) => self.orders.push(Directive {
                            id: "ORDER".to_string(),
                            line: c.line,
                            own_line: c.own_line,
                            used: Cell::new(false),
                        }),
                        Err(detail) => self.malformed.push(Malformed { line: c.line, detail }),
                    }
                } else if after_trim.starts_with("deterministic") {
                    self.det_marker = true;
                } else if after_trim.starts_with("error-surface") {
                    self.err_marker = true;
                } else {
                    self.malformed.push(Malformed {
                        line: c.line,
                        detail: format!(
                            "unrecognized directive `xtask:{}`",
                            after_trim.split_whitespace().next().unwrap_or("")
                        ),
                    });
                }
                rest = &rest[pos + "xtask:".len()..];
            }
        }
    }

    /// Mark lines belonging to `#[cfg(test)]` items and `#[test]` /
    /// `#[should_panic]`-style test functions.
    fn mark_test_spans(&mut self) {
        let toks = &self.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text) != Some("[") {
                i += 1;
                continue;
            }
            let attr_start_line = toks[i].line;
            let Some(attr_end) = match_close(toks, i + 1, "[", "]") else {
                break;
            };
            let attr = &toks[i + 2..attr_end];
            let testy = is_test_attr(attr);
            let mut j = attr_end + 1;
            if !testy {
                i = j;
                continue;
            }
            // Skip any further attributes on the same item.
            while j < toks.len()
                && toks[j].text == "#"
                && toks.get(j + 1).map(|t| t.text) == Some("[")
            {
                match match_close(toks, j + 1, "[", "]") {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            // The item extends to its first `;`, or through its brace
            // block if a `{` comes first.
            let mut end_line = attr_start_line;
            let mut k = j;
            while k < toks.len() {
                match toks[k].text {
                    ";" => {
                        end_line = toks[k].line;
                        break;
                    }
                    "{" => {
                        if let Some(close) = match_close(toks, k, "{", "}") {
                            end_line = toks[close].line;
                            k = close;
                        }
                        break;
                    }
                    _ => k += 1,
                }
            }
            for line in attr_start_line..=end_line {
                if let Some(slot) = self.in_test.get_mut(line as usize - 1) {
                    *slot = true;
                }
            }
            i = k + 1;
        }
    }
}

/// Whether attribute tokens (inside `#[…]`) mark test-only code:
/// `test`, `cfg(test)`, `cfg(all(test, …))`, `tokio::test`-style paths.
fn is_test_attr(attr: &[Tok<'_>]) -> bool {
    let Some(first) = attr.first() else { return false };
    if first.kind != TokKind::Ident {
        return false;
    }
    match first.text {
        "test" => true,
        "cfg" => attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "test"),
    }
}

/// Index of the token closing the group opened at `open_idx` (which
/// must hold `open`), or `None` if unbalanced.
pub fn match_close(toks: &[Tok<'_>], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert_eq!(toks[open_idx].text, open);
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parse `ID, reason)` from an allow directive.
fn parse_paren_args(args: &str) -> Result<(String, String), String> {
    let Some(close) = args.find(')') else {
        return Err("allow directive is missing its closing `)`".to_string());
    };
    let inner = &args[..close];
    let Some((id, reason)) = inner.split_once(',') else {
        return Err(format!(
            "allow directive needs a reason: allow({}, <why this is sound>)",
            inner.trim()
        ));
    };
    Ok((id.trim().to_string(), reason.trim().to_string()))
}

/// Parse `reason)` from an order marker.
fn parse_order_reason(args: &str) -> Result<(), String> {
    let Some(close) = args.find(')') else {
        return Err("order marker is missing its closing `)`".to_string());
    };
    if args[..close].trim().is_empty() {
        return Err("order marker needs a reason: order(<where the sort happens>)".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDS: &[&str] = &["DET001", "ERR001"];

    #[test]
    fn allow_parsing_and_coverage() {
        let src = "fn f() {\n    g(); // xtask:allow(ERR001, message contract pinned)\n}\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert_eq!(scan.allows.len(), 1);
        assert!(scan.try_allow("ERR001", 2));
        assert!(scan.allows[0].used.get());
        assert!(!scan.try_allow("ERR001", 3), "trailing allow covers only its line");
        assert!(!scan.try_allow("DET001", 2), "ids must match");
    }

    #[test]
    fn own_line_allow_covers_next_line() {
        let src = "// xtask:allow(DET001, draws are position-addressed)\nlet x = 1;\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(scan.try_allow("DET001", 1));
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(scan.try_allow("DET001", 2));
    }

    #[test]
    fn malformed_directives_are_reported() {
        for (src, needle) in [
            ("// xtask:allow(ERR001)\n", "reason"),
            ("// xtask:allow(NOPE42, something)\n", "unknown lint id"),
            ("// xtask:allow(ERR001, \n", "closing"),
            ("// xtask:order()\n", "reason"),
            ("// xtask:frobnicate\n", "unrecognized"),
        ] {
            let scan = FileScan::new("f.rs", src, IDS);
            assert_eq!(scan.malformed.len(), 1, "{src:?}");
            assert!(
                scan.malformed[0].detail.contains(needle),
                "{src:?}: {}",
                scan.malformed[0].detail
            );
        }
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let src = "/// Suppress with xtask:allow(ERR001, reason) on the line.\nfn f() {}\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(scan.allows.is_empty());
        assert!(scan.malformed.is_empty());
    }

    #[test]
    fn markers_set_flags() {
        let scan = FileScan::new("f.rs", "// xtask: deterministic\n", IDS);
        assert!(scan.det_marker && !scan.err_marker);
        let scan = FileScan::new("f.rs", "// xtask: error-surface\n", IDS);
        assert!(scan.err_marker && !scan.det_marker);
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(!scan.is_test_line(1));
        assert!(scan.is_test_line(2));
        assert!(scan.is_test_line(4));
        assert!(scan.is_test_line(5));
        assert!(!scan.is_test_line(6));
    }

    #[test]
    fn test_fn_and_cfg_test_use_spans() {
        let src = "#[test]\nfn t() {\n    x();\n}\nfn live() {}\n#[cfg(test)]\nuse foo::bar;\nfn live2() {}\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(scan.is_test_line(3));
        assert!(!scan.is_test_line(5));
        assert!(scan.is_test_line(7));
        assert!(!scan.is_test_line(8));
    }

    #[test]
    fn safety_comment_window() {
        let src = "// SAFETY: caller upholds the contract.\n// (details)\nlet x = 1;\nlet y = 2;\nlet z = 3;\nlet w = 4;\n";
        let scan = FileScan::new("f.rs", src, IDS);
        assert!(scan.has_safety_comment(3, 3));
        assert!(scan.has_safety_comment(4, 3));
        assert!(!scan.has_safety_comment(6, 3));
    }
}
