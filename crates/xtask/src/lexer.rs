//! A minimal hand-rolled Rust lexer.
//!
//! The analyzer's lints are token-level patterns, so the lexer's only
//! obligations are (a) never mistaking comment or string *contents* for
//! code, and (b) producing accurate line/column spans. It handles every
//! literal form that can embed code-looking text: line and (nested)
//! block comments, string literals with escapes, raw strings with any
//! hash count, byte and raw-byte strings, char literals, and lifetimes
//! (so `'a` is not the start of an unterminated char literal).
//!
//! It does **not** build a syntax tree; lints walk the flat token
//! stream and match brace/bracket structure themselves.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Single punctuation character (`{`, `.`, `:`, `!`, ...).
    Punct,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's source text.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

/// One comment (line or block), kept out of the code-token stream.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Full comment text including the `//` or `/* */` markers.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for line
    /// comments; block comments may span lines).
    pub end_line: u32,
    /// True when nothing but whitespace precedes the comment on its
    /// starting line.
    pub own_line: bool,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`). Doc
    /// comments are documentation: directive parsing ignores them, so
    /// lint syntax can be *described* in rustdoc without being *applied*.
    pub doc: bool,
}

impl Comment<'_> {
    /// The comment body without its `//`/`/*` markers.
    pub fn body(&self) -> &str {
        let t = self.text;
        if let Some(rest) = t.strip_prefix("//") {
            rest.trim_start_matches(['/', '!'])
        } else {
            t.trim_start_matches("/*")
                .trim_start_matches(['*', '!'])
                .trim_end_matches("*/")
                .trim_end_matches('*')
        }
    }
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens in source order (comments excluded).
    pub toks: Vec<Tok<'a>>,
    /// Comments in source order.
    pub comments: Vec<Comment<'a>>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    line_start: usize,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn col(&self, at: usize) -> u32 {
        (at - self.line_start + 1) as u32
    }

    fn newline(&mut self) {
        self.line += 1;
        self.line_start = self.i;
    }

    /// Advance one byte, keeping line accounting. Call only when inside
    /// a multi-byte element (string/comment) where bytes are opaque.
    fn bump_raw(&mut self) {
        if self.b[self.i] == b'\n' {
            self.i += 1;
            self.newline();
        } else {
            self.i += 1;
        }
    }

    fn push_tok(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text: &self.src[start..self.i], line, col });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let own = self.src[self.line_start..start].trim().is_empty();
        let doc = {
            let rest = &self.b[start + 2..];
            // `///` or `//!` but not the common `////…` separator rule.
            matches!(rest.first(), Some(b'!'))
                || (matches!(rest.first(), Some(b'/')) && !matches!(rest.get(1), Some(b'/')))
        };
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.i],
            line,
            end_line: line,
            own_line: own,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let own = self.src[self.line_start..start].trim().is_empty();
        let doc = {
            let rest = &self.b[start + 2..];
            matches!(rest.first(), Some(b'!'))
                || (matches!(rest.first(), Some(b'*'))
                    && !matches!(rest.get(1), Some(b'*') | Some(b'/')))
        };
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.b.get(self.i + 1) == Some(&b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.b.get(self.i + 1) == Some(&b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.bump_raw();
            }
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.i],
            line,
            end_line: self.line,
            own_line: own,
            doc,
        });
    }

    /// Consume a `"…"` string body starting at the opening quote.
    fn quoted_string(&mut self) {
        debug_assert_eq!(self.b[self.i], b'"');
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.i += 1;
                    if self.i < self.b.len() {
                        self.bump_raw();
                    }
                }
                b'"' => {
                    self.i += 1;
                    return;
                }
                _ => self.bump_raw(),
            }
        }
    }

    /// Consume a raw string starting at the first `#` or `"` after the
    /// `r`/`br` prefix. Returns false if this is not a raw string (e.g.
    /// `r#ident`), leaving the position untouched.
    fn raw_string(&mut self) -> bool {
        let save = (self.i, self.line, self.line_start);
        let mut hashes = 0usize;
        while self.b.get(self.i) == Some(&b'#') {
            hashes += 1;
            self.i += 1;
        }
        if self.b.get(self.i) != Some(&b'"') {
            (self.i, self.line, self.line_start) = save;
            return false;
        }
        self.i += 1;
        'body: while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                // A closing quote needs `hashes` following `#`s.
                for k in 0..hashes {
                    if self.b.get(self.i + 1 + k) != Some(&b'#') {
                        self.bump_raw();
                        continue 'body;
                    }
                }
                self.i += 1 + hashes;
                return true;
            }
            self.bump_raw();
        }
        true
    }

    /// At a `'`: lex either a lifetime or a char literal.
    fn quote(&mut self) {
        let start = self.i;
        let line = self.line;
        let col = self.col(start);
        let next = self.b.get(self.i + 1).copied();
        match next {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.i += 2;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.bump_raw();
                }
                self.i = (self.i + 1).min(self.b.len());
                self.push_tok(TokKind::Literal, start, line, col);
            }
            Some(c) if is_ident_start(c) => {
                // `'x'` is a char literal; `'xy…` (no closing quote right
                // after one ident char) is a lifetime.
                let mut j = self.i + 1;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'')
                    && j > self.i + 1
                    && self.src[self.i + 1..j].chars().count() == 1
                {
                    self.i = j + 1;
                    self.push_tok(TokKind::Literal, start, line, col);
                } else {
                    self.i = j;
                    self.push_tok(TokKind::Lifetime, start, line, col);
                }
            }
            // `'('`-style char literal of a punctuation char: the byte
            // after next is the closing quote.
            Some(_) if self.b.get(self.i + 2) == Some(&b'\'') => {
                self.i += 3;
                self.push_tok(TokKind::Literal, start, line, col);
            }
            // Stray quote (or EOF): emit it as punctuation.
            _ => {
                self.i += 1;
                self.push_tok(TokKind::Punct, start, line, col);
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        let col = self.col(start);
        if self.b[self.i] == b'0'
            && matches!(self.b.get(self.i + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            self.push_tok(TokKind::Literal, start, line, col);
            return;
        }
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
        // A fractional part only if the dot is not `..` and not a method
        // call (`1.max(…)`).
        if self.b.get(self.i) == Some(&b'.') {
            let after = self.b.get(self.i + 1).copied();
            let fractional = match after {
                Some(c) if c.is_ascii_digit() => true,
                Some(b'.') => false,
                Some(c) if is_ident_start(c) => false,
                _ => true, // trailing `1.`
            };
            if fractional {
                self.i += 1;
                while self.i < self.b.len()
                    && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                {
                    self.i += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.b.get(self.i), Some(b'e' | b'E'))
            && matches!(self.b.get(self.i + 1), Some(c) if c.is_ascii_digit() || *c == b'+' || *c == b'-')
        {
            self.i += 2;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
            }
        }
        // Type suffix (`u32`, `f64`, …).
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push_tok(TokKind::Literal, start, line, col);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let line = self.line;
        let col = self.col(start);
        // Raw/byte string prefixes: r" r#" b" b' br" br#" rb is not Rust.
        match self.b[self.i] {
            b'r' => {
                if matches!(self.b.get(self.i + 1), Some(b'"') | Some(b'#')) {
                    self.i += 1;
                    if self.raw_string() {
                        self.push_tok(TokKind::Literal, start, line, col);
                        return;
                    }
                    // `r#ident`: fall through, consuming the `#` as part
                    // of the identifier.
                    if self.b.get(self.i) == Some(&b'#') {
                        self.i += 1;
                    }
                }
            }
            b'b' => match self.b.get(self.i + 1) {
                Some(b'"') => {
                    self.i += 1;
                    self.quoted_string();
                    self.push_tok(TokKind::Literal, start, line, col);
                    return;
                }
                Some(b'\'') => {
                    self.i += 1;
                    self.quote();
                    // Re-tag the pushed token to span the `b` prefix.
                    if let Some(last) = self.out.toks.last_mut() {
                        last.text = &self.src[start..self.i];
                        last.col = col;
                        last.kind = TokKind::Literal;
                    }
                    return;
                }
                Some(b'r') if matches!(self.b.get(self.i + 2), Some(b'"') | Some(b'#')) => {
                    self.i += 2;
                    if self.raw_string() {
                        self.push_tok(TokKind::Literal, start, line, col);
                        return;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push_tok(TokKind::Ident, start, line, col);
    }

    fn run(mut self) -> Lexed<'a> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.i += 1;
                    self.newline();
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.b.get(self.i + 1) == Some(&b'/') => self.line_comment(),
                b'/' if self.b.get(self.i + 1) == Some(&b'*') => self.block_comment(),
                b'"' => {
                    let start = self.i;
                    let line = self.line;
                    let col = self.col(start);
                    self.quoted_string();
                    self.push_tok(TokKind::Literal, start, line, col);
                }
                b'\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    let start = self.i;
                    let line = self.line;
                    let col = self.col(start);
                    self.i += 1;
                    self.push_tok(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }
}

/// Lex `src` into code tokens and comments.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer { src, b: src.as_bytes(), i: 0, line: 1, line_start: 0, out: Lexed::default() }.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.iter().map(|t| t.text.to_string()).collect()
    }

    #[test]
    fn code_in_strings_is_opaque() {
        let lexed = lex(r#"let x = "unsafe { HashMap } // not a comment";"#);
        assert_eq!(lexed.comments.len(), 0);
        let idents: Vec<_> =
            lexed.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect();
        assert_eq!(idents, vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"contains "quotes" and unsafe"#; let t = 1;"####;
        let idents: Vec<_> = lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(texts(src), vec!["a", "b"]);
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}';";
        let lits = lex(src).toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "let a = 1;\n  let bb = 2;";
        let lexed = lex(src);
        let bb = lexed.toks.iter().find(|t| t.text == "bb").unwrap();
        assert_eq!((bb.line, bb.col), (2, 7));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert!(texts("for i in 0..10 {}").contains(&"..".chars().next().unwrap().to_string()));
        let toks = texts("let x = 1.max(2); let y = 1.5; let z = 0x_fe;");
        assert!(toks.contains(&"max".to_string()));
        assert!(toks.contains(&"1.5".to_string()));
        assert!(toks.contains(&"0x_fe".to_string()));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let src =
            "/// doc\n//! inner doc\n// plain\n/** block doc */\n/* plain block */\nfn f() {}";
        let docs: Vec<bool> = lex(src).comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn own_line_detection() {
        let src = "let x = 1; // trailing\n// leading\nlet y = 2;";
        let own: Vec<bool> = lex(src).comments.iter().map(|c| c.own_line).collect();
        assert_eq!(own, vec![false, true]);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let src = r###"let a = b"bytes"; let b = br#"raw"#; let r#fn = 1;"###;
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.text == "r#fn"));
        let lits = lexed.toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 3); // two strings + `1`
    }
}
