//! CLI for the in-repo analyzer.
//!
//! ```text
//! cargo run -p xtask -- check [--root DIR] [--config FILE]
//! cargo run -p xtask -- lints
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O failure.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use xtask::config::Config;
use xtask::lints::LINTS;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("lints") => {
            // A reader hanging up early (`xtask lints | head`) is not an
            // error; stop writing instead of panicking on EPIPE.
            let mut out = std::io::stdout().lock();
            for l in LINTS {
                if writeln!(out, "{}  {}\n        invariant: {}", l.id, l.summary, l.invariant)
                    .is_err()
                {
                    break;
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: xtask check [--root DIR] [--config FILE] | xtask lints");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--config" => config = it.next().map(PathBuf::from),
            other => {
                eprintln!("xtask check: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        // Default to the workspace root: two levels above this crate.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let config_path = config.unwrap_or_else(|| root.join("xtask.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask check: {e}");
            return ExitCode::from(2);
        }
    };
    match xtask::check_workspace(&root, &cfg) {
        Ok(report) => {
            let _ = write!(std::io::stdout().lock(), "{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask check: {e}");
            ExitCode::from(2)
        }
    }
}
