//! # RetraSyn — real-time trajectory synthesis with local differential privacy
//!
//! This crate is the facade over the full reproduction of *"Real-Time
//! Trajectory Synthesis with Local Differential Privacy"* (ICDE 2024). It
//! re-exports the workspace crates so downstream users can depend on a single
//! crate:
//!
//! - [`ldp`] — LDP mechanisms (OUE, GRR), aggregation, w-event accounting.
//! - [`geo`] — grids, trajectories, streams, and the transition-state domain.
//! - [`datagen`] — road-network and taxi stream generators (the evaluation
//!   substrates: Brinkhoff-style Oldenburg/SanJoaquin, T-Drive-like).
//! - [`core`] — the RetraSyn engine (global mobility model, DMU, real-time
//!   synthesis, adaptive allocation) plus the LDP-IDS baselines.
//! - [`metrics`] — every utility metric from the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use retrasyn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. Generate a small trajectory stream (the substrate).
//! let mut rng = StdRng::seed_from_u64(7);
//! let dataset = RandomWalkConfig { users: 200, timestamps: 40, ..Default::default() }
//!     .generate(&mut rng);
//!
//! // 2. Configure RetraSyn: 6x6 grid, eps = 1.0, window w = 10.
//! let grid = Grid::unit(6);
//! let config = RetraSynConfig::new(1.0, 10).with_lambda(dataset.stats(&grid).avg_length);
//!
//! // 3. Run the private streaming synthesis.
//! let mut engine = RetraSyn::population_division(config, grid.clone(), 7);
//! let synthetic = engine.run(&dataset);
//!
//! // 4. The synthetic stream is a drop-in substitute for the raw one.
//! assert_eq!(synthetic.horizon(), dataset.horizon());
//! engine.ledger().verify().expect("w-event LDP accounting holds");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use retrasyn_core as core;
pub use retrasyn_datagen as datagen;
pub use retrasyn_geo as geo;
pub use retrasyn_ldp as ldp;
pub use retrasyn_metrics as metrics;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use retrasyn_core::{
        AllocationKind, BaselineKind, Division, LdpIds, LdpIdsConfig, RetraSyn, RetraSynConfig,
    };
    pub use retrasyn_datagen::{
        BrinkhoffConfig, RandomWalkConfig, RegimeShiftConfig, RoadNetwork, TDriveConfig,
    };
    pub use retrasyn_geo::{CellId, Grid, Point, StreamDataset, Trajectory, TransitionTable};
    pub use retrasyn_ldp::{Oue, PrivacyBudget, WEventLedger};
    pub use retrasyn_metrics::{MetricSuite, SuiteConfig};
}
