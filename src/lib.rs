//! # RetraSyn — real-time trajectory synthesis with local differential privacy
//!
//! This crate is the facade over the full reproduction of *"Real-Time
//! Trajectory Synthesis with Local Differential Privacy"* (ICDE 2024). It
//! re-exports the workspace crates so downstream users can depend on a single
//! crate:
//!
//! - [`ldp`] — LDP mechanisms (OUE, GRR), aggregation, w-event accounting.
//! - [`geo`] — grids, trajectories, streams, and the transition-state domain.
//! - [`datagen`] — road-network and taxi stream generators (the evaluation
//!   substrates: Brinkhoff-style Oldenburg/SanJoaquin, T-Drive-like).
//! - [`core`] — the RetraSyn engine (global mobility model, DMU, real-time
//!   synthesis, adaptive allocation), the LDP-IDS baselines, and the
//!   streaming session API that unifies them.
//! - [`metrics`] — every utility metric from the paper's evaluation, plus
//!   live per-snapshot monitors.
//!
//! ## The streaming session model
//!
//! The paper's defining property is that a synthetic database is published
//! at **every timestamp** of an unbounded stream. The API mirrors that: an
//! [`EventSource`](prelude::EventSource) feeds one batch of events per
//! timestamp (from a recorded timeline, an iterator/closure, or a bounded
//! channel fed by a live producer), the engine ingests each batch with
//! `step`, exposes the current synthetic database between steps as a
//! borrowed zero-copy `snapshot()`, and `release()`s the accumulated
//! database — mid-stream or at the horizon — without consuming the engine.
//! Both `RetraSyn` and the `LdpIds` baselines implement
//! [`StreamingEngine`](prelude::StreamingEngine), so drivers, benchmarks
//! and metrics are written once, generically. Batch mode is a special
//! case: `run(&dataset)` just drives a
//! [`TimelineSource`](prelude::TimelineSource) derived from the recorded
//! data.
//!
//! ## Quickstart
//!
//! ```
//! use retrasyn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. Generate a small trajectory stream (the substrate).
//! let mut rng = StdRng::seed_from_u64(7);
//! let dataset = RandomWalkConfig { users: 200, timestamps: 40, ..Default::default() }
//!     .generate(&mut rng);
//!
//! // 2. Configure RetraSyn: 6x6 grid, eps = 1.0, window w = 10.
//! let grid = Grid::unit(6);
//! let config = RetraSynConfig::new(1.0, 10).with_lambda(dataset.stats(&grid).avg_length);
//! let mut engine = RetraSyn::population_division(config, grid.clone(), 7);
//!
//! // 3. Stream: ingest one timestamp at a time, observing the live
//! //    synthetic database in between (post-processing — no extra budget).
//! let gridded = dataset.discretize(&grid);
//! let mut source = TimelineSource::from_gridded(&gridded);
//! while let Some(batch) = source.next_batch() {
//!     let outcome = engine.step(engine.next_timestamp(), batch);
//!     let live = engine.snapshot(); // borrowed, zero-copy
//!     assert_eq!(live.active_count(), outcome.active);
//! }
//!
//! // 4. Release the accumulated synthetic database (also fine mid-stream).
//! let synthetic = engine.release();
//! assert_eq!(synthetic.horizon(), dataset.horizon());
//! engine.ledger().verify().expect("w-event LDP accounting holds");
//!
//! // 5. Batch mode is the same thing in one call (on a fresh session).
//! engine.reset();
//! let again = engine.run(&dataset);
//! assert_eq!(again, synthetic);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use retrasyn_core as core;
pub use retrasyn_datagen as datagen;
pub use retrasyn_geo as geo;
pub use retrasyn_ldp as ldp;
pub use retrasyn_metrics as metrics;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use retrasyn_core::{
        AllocationKind, BaselineKind, BatchSender, ChannelSource, CheckpointUse, Checkpointer,
        CollectError, CollectionKernel, CompactionPolicy, CompactionStats, Division, EventFault,
        EventSource, FnSource, FsyncPolicy, IngestPolicy, IngestStats, IterSource, LdpIds,
        LdpIdsConfig, PoolError, QuarantinedEvent, Recovery, RetraSyn, RetraSynConfig,
        SessionError, SnapshotStream, SnapshotView, StallPolicy, StepOutcome, StepVerdict,
        StreamingEngine, SuperviseError, Supervisor, SupervisorStats, TimelineSource,
        ValidatedSource, WalContents, WalError, WalReplay, WalSource, WalWriter,
    };
    pub use retrasyn_datagen::{
        BrinkhoffConfig, RandomWalkConfig, RegimeShiftConfig, RoadNetwork, TDriveConfig,
    };
    pub use retrasyn_geo::{
        BoundingBox, CellId, EventTimeline, Grid, GriddedDataset, Point, QuadGrid, QuadLeaf, Space,
        SpaceDescriptor, StreamDataset, Topology, Trajectory, TransitionTable, UniformGrid,
        UserEvent,
    };
    pub use retrasyn_ldp::{Oue, PrivacyBudget, WEventLedger};
    pub use retrasyn_metrics::{MetricSuite, SuiteConfig};
}
